(** Reputation scores over repeated executions.

    The plain {!Repeated} harness distrusts a process forever after one
    piece of evidence. Real monitors weigh evidence and forget: scores
    rise with each incident and decay geometrically between executions,
    and only processes above a threshold are predicted faulty. This
    tolerates occasional false evidence (a process wrongly flagged once
    is eventually forgiven) at the price of reacting more slowly to a
    persistent attacker. *)

type t

val create : ?decay:float -> ?threshold:float -> ?increment:float -> n:int -> unit -> t
(** Fresh tracker for [n] processes. Each {!observe} multiplies every
    score by [decay] (default 0.7) and adds [increment] (default 1.0)
    per flagged process; {!suspects} returns processes with score at
    least [threshold] (default 0.9). *)

val observe : t -> suspects:int list -> unit
(** Record one execution's evidence. *)

val score : t -> int -> float
val suspects : t -> int list
(** Processes above the threshold, ascending. *)

val advice : t -> Bap_prediction.Advice.t array
(** One advice vector per process (shared network-tap view): suspects
    predicted faulty, everyone else honest. *)
