lib/monitor/reputation.mli: Bap_prediction
