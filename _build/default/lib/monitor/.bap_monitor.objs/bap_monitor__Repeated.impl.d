lib/monitor/repeated.ml: Array Bap_core Bap_prediction Bap_sim List Observer Reputation
