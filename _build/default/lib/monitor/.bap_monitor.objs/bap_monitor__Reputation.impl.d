lib/monitor/reputation.ml: Array Bap_prediction List
