lib/monitor/observer.ml: Array Bap_core Bap_prediction Bap_sim Fmt Hashtbl List Printf String
