module Advice = Bap_prediction.Advice

type t = {
  decay : float;
  threshold : float;
  increment : float;
  scores : float array;
}

let create ?(decay = 0.7) ?(threshold = 0.9) ?(increment = 1.0) ~n () =
  if not (0.0 <= decay && decay <= 1.0) then invalid_arg "Reputation.create: decay";
  { decay; threshold; increment; scores = Array.make n 0.0 }

let observe t ~suspects =
  Array.iteri (fun i s -> t.scores.(i) <- s *. t.decay) t.scores;
  List.iter
    (fun who ->
      if who >= 0 && who < Array.length t.scores then
        t.scores.(who) <- t.scores.(who) +. t.increment)
    suspects

let score t i = t.scores.(i)

let suspects t =
  let acc = ref [] in
  for i = Array.length t.scores - 1 downto 0 do
    if t.scores.(i) >= t.threshold then acc := i :: !acc
  done;
  !acc

let advice t =
  let n = Array.length t.scores in
  let flagged = suspects t in
  let a = Advice.init n (fun j -> not (List.mem j flagged)) in
  Array.make n a
