let first inbox ~f = Array.map (fun msgs -> List.find_map f msgs) inbox

let all inbox ~f = Array.map (fun msgs -> List.filter_map f msgs) inbox

let count votes ~eq v =
  Array.fold_left (fun acc -> function Some w when eq v w -> acc + 1 | _ -> acc) 0 votes

let plurality votes ~compare =
  (* Count multiplicities with an association list keyed by [compare];
     vote arrays are small (one slot per process). *)
  let counts = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some v -> (
        match List.partition (fun (w, _) -> compare v w = 0) !counts with
        | [ (_, c) ], rest -> counts := (v, c + 1) :: rest
        | [], rest -> counts := (v, 1) :: rest
        | _ :: _ :: _, _ -> assert false))
    votes;
  List.fold_left
    (fun best (v, c) ->
      match best with
      | None -> Some (v, c)
      | Some (bv, bc) ->
        if c > bc || (c = bc && compare v bv < 0) then Some (v, c) else best)
    None !counts

let senders votes =
  let acc = ref [] in
  for i = Array.length votes - 1 downto 0 do
    match votes.(i) with Some _ -> acc := i :: !acc | None -> ()
  done;
  !acc
