lib/sim/adversary.mli:
