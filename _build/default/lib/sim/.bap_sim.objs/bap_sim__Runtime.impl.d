lib/sim/runtime.ml: Adversary Array Effect List Trace
