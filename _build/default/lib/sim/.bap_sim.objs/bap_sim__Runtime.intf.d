lib/sim/runtime.mli: Adversary Trace
