lib/sim/adversary.ml: List Printf
