lib/sim/trace.mli: Fmt
