lib/sim/inbox.ml: Array List
