lib/sim/trace.ml: Fmt List
