lib/sim/rng.mli:
