lib/sim/inbox.mli:
