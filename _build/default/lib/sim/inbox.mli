(** Helpers for reading a round's inbox.

    An inbox (as returned by {!Runtime.S.exchange}) is an array indexed by
    sender, each slot holding the messages that sender delivered this
    round. Byzantine senders may deliver several or malformed messages;
    protocol steps therefore parse with a partial function and, where a
    threshold is being counted, must take at most one vote per sender —
    {!first} enforces exactly that. *)

val first : 'msg list array -> f:('msg -> 'a option) -> 'a option array
(** [first inbox ~f] keeps, per sender, the first message that [f]
    accepts. *)

val all : 'msg list array -> f:('msg -> 'a option) -> 'a list array
(** Every accepted message, per sender. *)

val count : 'a option array -> eq:('a -> 'a -> bool) -> 'a -> int
(** Number of senders whose (unique) accepted value equals the given
    one. *)

val plurality : 'a option array -> compare:('a -> 'a -> int) -> ('a * int) option
(** The value accepted from the most senders together with its
    multiplicity; ties broken towards the smallest value. [None] on an
    all-[None] array. *)

val senders : 'a option array -> int list
(** Senders with an accepted value, ascending. *)
