type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: advance by the golden gamma and mix. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.sub a 0 k |> Array.to_list |> List.sort compare
