(** Deterministic pseudo-random number generator (splitmix64).

    All experiments and property generators in this repository draw
    randomness through this module so that every execution is exactly
    reproducible from a single integer seed, independent of the global
    [Stdlib.Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the two generators are (statistically) independent. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on
    the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)], in increasing order. Requires [0 <= k <= n]. *)
