(** Synthetic advice generators with an exact error budget.

    These stand in for the security-monitoring products the paper
    motivates (Darktrace, Vectra, Zeek): instead of a black box with
    unknown accuracy, each generator plants a controlled number [budget]
    of incorrect bits into the honest processes' advice vectors. Only
    bits handed to honest processes count towards [B] (matching the
    model in Section 3), so faulty processes always receive the ground
    truth here — the adversary may ignore or rewrite it anyway. *)

type placement =
  | Uniform
      (** [budget] flips spread uniformly at random over all (honest
          receiver, subject) pairs. The typical "noisy monitor". *)
  | Focused
      (** Flips concentrated on as few subject processes as possible,
          faulty subjects first: the cheapest way for an error budget to
          cause misclassifications, i.e. the worst case for the
          algorithm. *)
  | Scattered
      (** Flips spread so thinly that no process can be misclassified
          even with full faulty collusion in the vote (each subject gets
          at most [ceil(n/2) - f - 1] wrong honest votes): the best case,
          where B > 0 yet classification is perfect. May use less than
          the requested budget if the spread capacity is exhausted. *)
  | All_wrong
      (** Every honest bit inverted; [budget] is ignored. The totally
          broken monitor. *)
  | Targeted of int
      (** Like [Focused] but plants at most the given number of wrong
          bits per subject: with [Targeted (majority - f)] and a lying
          faulty coalition, every corrupted subject is misclassified at
          the cheapest possible rate, maximising k_A for a budget. *)

val perfect : n:int -> faulty:int array -> Advice.t array
(** Ground-truth advice for everyone: B = 0. *)

val generate :
  rng:Bap_sim.Rng.t -> n:int -> faulty:int array -> budget:int -> placement -> Advice.t array
(** One advice vector per process. The number of planted errors is
    [min budget capacity] where capacity depends on the placement; use
    {!Quality.measure} to read back the exact [B] of the result. *)
