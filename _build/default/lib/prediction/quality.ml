type stats = { b : int; b_f : int; b_h : int; per_subject : int array }

let measure ~n ~faulty advice =
  if Array.length advice <> n then invalid_arg "Quality.measure: advice length";
  let is_faulty = Array.make n false in
  Array.iter (fun j -> is_faulty.(j) <- true) faulty;
  let truth = Advice.ground_truth ~n ~faulty in
  let b_f = ref 0 and b_h = ref 0 in
  let per_subject = Array.make n 0 in
  for i = 0 to n - 1 do
    if not is_faulty.(i) then
      for j = 0 to n - 1 do
        if Advice.get advice.(i) j <> Advice.get truth j then begin
          per_subject.(j) <- per_subject.(j) + 1;
          if is_faulty.(j) then incr b_f else incr b_h
        end
      done
  done;
  { b = !b_f + !b_h; b_f = !b_f; b_h = !b_h; per_subject }

let pp_stats ppf s = Fmt.pf ppf "B=%d (B_F=%d, B_H=%d)" s.b s.b_f s.b_h
