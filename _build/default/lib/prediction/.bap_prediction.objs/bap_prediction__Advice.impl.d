lib/prediction/advice.ml: Array Fmt
