lib/prediction/gen.mli: Advice Bap_sim
