lib/prediction/quality.mli: Advice Fmt
