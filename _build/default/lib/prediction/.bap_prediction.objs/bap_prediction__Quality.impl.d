lib/prediction/quality.ml: Advice Array Fmt
