lib/prediction/gen.ml: Advice Array Bap_sim List
