lib/prediction/advice.mli: Fmt
