(** Accounting of prediction quality for a given execution.

    Implements the model's error counts (Section 3): [b_f] is the number
    of bits held by honest processes that wrongly predict a faulty process
    as honest, [b_h] wrongly predicts an honest process as faulty, and
    [b = b_f + b_h]. Bits given to faulty processes are not counted. *)

type stats = {
  b : int;
  b_f : int;
  b_h : int;
  per_subject : int array;
      (** [per_subject.(j)] = number of honest-held incorrect bits about
          process [j]. *)
}

val measure : n:int -> faulty:int array -> Advice.t array -> stats

val pp_stats : stats Fmt.t
