module Rng = Bap_sim.Rng

type placement = Uniform | Focused | Scattered | All_wrong | Targeted of int

let perfect ~n ~faulty =
  let truth = Advice.ground_truth ~n ~faulty in
  Array.init n (fun _ -> truth)

let honest_ids n faulty =
  let is_faulty = Array.make n false in
  Array.iter (fun j -> is_faulty.(j) <- true) faulty;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not is_faulty.(i) then acc := i :: !acc
  done;
  (!acc, is_faulty)

(* Apply a list of (receiver, subject) flips to ground-truth advice. *)
let apply_flips ~n ~faulty flips =
  let advice = Array.map Advice.to_bool_array (perfect ~n ~faulty) in
  List.iter (fun (i, j) -> advice.(i).(j) <- not advice.(i).(j)) flips;
  Array.map Advice.of_bool_array advice

let uniform ~rng ~n ~faulty ~budget =
  let honest, _ = honest_ids n faulty in
  let honest = Array.of_list honest in
  let h = Array.length honest in
  let capacity = h * n in
  let budget = min budget capacity in
  (* Sample distinct cells of the h x n grid. *)
  let cells = Rng.sample_without_replacement rng budget capacity in
  let flips = List.map (fun c -> (honest.(c / n), c mod n)) cells in
  apply_flips ~n ~faulty flips

let focused_with_cap ~rng ~n ~faulty ~budget ~cap =
  let honest, _ = honest_ids n faulty in
  let honest_arr = Array.of_list honest in
  Rng.shuffle rng honest_arr;
  (* Subjects in the order we corrupt them: faulty first (making a faulty
     process look honest is what lets it into leader sets), then honest. *)
  let subjects = Array.append (Array.copy faulty) (Array.of_list honest) in
  let h = Array.length honest_arr in
  let per_subject = min h cap in
  let budget = min budget (h * n) in
  let flips = ref [] in
  let remaining = ref budget in
  Array.iter
    (fun j ->
      if !remaining > 0 then begin
        let take = min !remaining per_subject in
        for idx = 0 to take - 1 do
          flips := (honest_arr.(idx), j) :: !flips
        done;
        remaining := !remaining - take
      end)
    subjects;
  apply_flips ~n ~faulty !flips

let scattered ~rng ~n ~faulty ~budget =
  let honest, _ = honest_ids n faulty in
  let honest_arr = Array.of_list honest in
  Rng.shuffle rng honest_arr;
  let h = Array.length honest_arr in
  let f = Array.length faulty in
  (* Even if all f faulty processes vote wrongly about subject j, j stays
     correctly classified as long as fewer than ceil(n/2) - f honest votes
     about j are wrong (Observations 1-2). *)
  let per_subject_cap = max 0 (((n + 1) / 2) - f - 1) in
  let per_subject_cap = min per_subject_cap h in
  let budget = min budget (per_subject_cap * n) in
  let flips = ref [] in
  let planted = ref 0 in
  (* Round-robin over subjects, one flip per subject per sweep. *)
  let sweep = ref 0 in
  while !planted < budget && !sweep < per_subject_cap do
    let j = ref 0 in
    while !planted < budget && !j < n do
      flips := (honest_arr.((!sweep + !j) mod h), !j) :: !flips;
      incr planted;
      incr j
    done;
    incr sweep
  done;
  (* The round-robin above may revisit the same (receiver, subject) cell
     when h < n; deduplicate to keep the advice well defined. *)
  let flips = List.sort_uniq compare !flips in
  apply_flips ~n ~faulty flips

let all_wrong ~n ~faulty =
  let truth = Advice.ground_truth ~n ~faulty in
  let _, is_faulty = honest_ids n faulty in
  Array.init n (fun i ->
      if is_faulty.(i) then truth
      else Advice.init n (fun j -> not (Advice.get truth j)))

let generate ~rng ~n ~faulty ~budget placement =
  match placement with
  | Uniform -> uniform ~rng ~n ~faulty ~budget
  | Focused -> focused_with_cap ~rng ~n ~faulty ~budget ~cap:max_int
  | Targeted cap -> focused_with_cap ~rng ~n ~faulty ~budget ~cap:(max 1 cap)
  | Scattered -> scattered ~rng ~n ~faulty ~budget
  | All_wrong -> all_wrong ~n ~faulty
