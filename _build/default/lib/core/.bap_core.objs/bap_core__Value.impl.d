lib/core/value.ml: Bool Fmt Int String
