lib/core/bb_committee.ml: Array Bap_crypto Bap_sim List Option Value Wire
