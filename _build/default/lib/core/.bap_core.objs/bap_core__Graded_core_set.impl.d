lib/core/graded_core_set.ml: Array Bap_sim List Value Wire
