lib/core/classification.mli: Bap_prediction
