lib/core/graded_auth.ml: Array Bap_crypto Bap_sim List Option Value Wire
