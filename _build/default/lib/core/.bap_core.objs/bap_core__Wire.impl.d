lib/core/wire.ml: Bap_crypto Bap_prediction Fmt Int List String Value
