lib/core/graded_unauth.ml: Bap_sim Value Wire
