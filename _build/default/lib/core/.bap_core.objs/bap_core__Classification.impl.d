lib/core/classification.ml: Array Bap_prediction Int List
