lib/core/ba_class_auth.ml: Array Bap_crypto Bap_prediction Bap_sim Bb_committee Classification List Option Value Wire
