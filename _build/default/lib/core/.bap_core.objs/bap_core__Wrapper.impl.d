lib/core/wrapper.ml: Bap_prediction Bap_sim Classify Early_stopping List Option Value Wire
