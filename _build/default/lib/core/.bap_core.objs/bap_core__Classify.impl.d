lib/core/classify.ml: Bap_prediction Bap_sim Classification Wire
