lib/core/early_stopping.ml: Array Bap_sim List Option Value Wire
