lib/core/conciliate.ml: Array Bap_sim List Option Value Wire
