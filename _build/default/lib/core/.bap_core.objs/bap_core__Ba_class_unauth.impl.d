lib/core/ba_class_unauth.ml: Array Bap_prediction Bap_sim Classification Conciliate Graded_core_set List Option Value Wire
