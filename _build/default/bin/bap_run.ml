(* CLI: run a single Byzantine-Agreement-with-predictions execution with
   chosen parameters and print its outcome (and, optionally, the full
   message trace).

   Examples:
     dune exec bin/bap_run.exe -- -n 31 -t 10 -f 5 --misclassified 4
     dune exec bin/bap_run.exe -- -n 21 -t 9 --auth --adversary splitter
     dune exec bin/bap_run.exe -- -n 10 -t 3 -f 2 --trace *)

module V = Bap_core.Value.Int
module Stack = Bap_core.Stack.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Stack.W)
module Adversary = Bap_sim.Adversary
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Rng = Bap_sim.Rng
module Observer = Bap_monitor.Observer.Make (V) (Stack.W)
open Cmdliner

let adversary_names =
  [
    "passive";
    "silent";
    "equivocate";
    "value-push";
    "advice-liar";
    "liar-silent";
    "echo-chaos";
    "splitter";
    "infiltrator";
  ]

let pick_adversary name ~n ~t pki =
  match name with
  | "passive" -> Adversary.passive
  | "silent" -> Adversary.silent
  | "equivocate" -> Adv.equivocate ~v0:0 ~v1:1
  | "value-push" -> Adv.value_push ~v:1
  | "advice-liar" -> Adv.advice_liar
  | "liar-silent" -> Adv.advice_liar_then_silent
  | "echo-chaos" -> Adv.echo_chaos ~v0:0 ~v1:1
  | "splitter" -> Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
  | "infiltrator" -> (
    match pki with
    | Some pki -> Adv.committee_infiltrator ~pki ~v0:0 ~v1:1
    | None -> failwith "infiltrator needs --auth")
  | other -> failwith ("unknown adversary: " ^ other)

let run n t f misclassified budget placement adversary auth seed trace monitor
    value_prediction =
  let rng = Rng.create seed in
  let faulty = Array.init f Fun.id in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice =
    match (misclassified, budget) with
    | 0, 0 -> Gen.perfect ~n ~faulty
    | 0, b ->
      let p =
        match placement with
        | "uniform" -> Gen.Uniform
        | "focused" -> Gen.Focused
        | "scattered" -> Gen.Scattered
        | "all-wrong" -> Gen.All_wrong
        | other -> failwith ("unknown placement: " ^ other)
      in
      Gen.generate ~rng ~n ~faulty ~budget:b p
    | m, _ ->
      let per = max 1 (Bap_core.Classification.majority_threshold n - f) in
      Gen.generate ~rng ~n ~faulty ~budget:(m * per) (Gen.Targeted per)
  in
  let stats = Quality.measure ~n ~faulty advice in
  Fmt.pr "n=%d t=%d f=%d %a adversary=%s %s@." n t f Quality.pp_stats stats adversary
    (if auth then "[authenticated]" else "[unauthenticated]");
  let tr =
    if trace || monitor then Some (Bap_sim.Trace.create ~limit:5_000_000 ()) else None
  in
  let outcome =
    if auth then
      fst
        (Stack.run_auth ?trace:tr ~t ~faulty ~inputs ~advice
           ~adversary:(fun pki -> pick_adversary adversary ~n ~t (Some pki))
           ())
    else
      Stack.run_unauth ?trace:tr ~t ~faulty ~inputs ~advice
        ?value_predictions:(Option.map (fun v -> Array.make n v) value_prediction)
        ~adversary:(pick_adversary adversary ~n ~t None)
        ()
  in
  Fmt.pr "rounds=%d decided-round=%d honest-messages=%d adversary-messages=%d@."
    outcome.Stack.R.rounds (Stack.decision_round outcome) outcome.Stack.R.honest_sent
    outcome.Stack.R.adversary_sent;
  List.iter
    (fun (i, r) ->
      Fmt.pr "  p%-3d decided %d in round %d@." i r.Stack.Wrapper.value
        r.Stack.Wrapper.decided_round)
    (Stack.R.honest_decisions outcome);
  Fmt.pr "agreement=%b validity=%b@." (Stack.agreement outcome)
    (Stack.unanimous_validity ~inputs ~faulty outcome);
  (match tr with
  | Some tr when monitor ->
    let verdict = Observer.observe ~n tr in
    Fmt.pr "@.-- monitor verdict --@.";
    if verdict.Observer.evidence = [] then Fmt.pr "no behavioural evidence found@."
    else
      List.iter
        (fun (who, reason) -> Fmt.pr "process %d: %s@." who reason)
        verdict.Observer.evidence
  | _ -> ());
  match tr with
  | Some tr when trace -> Fmt.pr "@.-- trace --@.%a@." (Bap_sim.Trace.pp Stack.W.pp) tr
  | _ -> ()

let cmd =
  let n = Arg.(value & opt int 13 & info [ "n" ] ~doc:"Number of processes.") in
  let t = Arg.(value & opt int 4 & info [ "t" ] ~doc:"Fault tolerance bound.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Actual number of faulty processes (ids 0..f-1).") in
  let m =
    Arg.(
      value & opt int 0
      & info [ "misclassified" ] ~doc:"Target number of misclassified processes.")
  in
  let budget =
    Arg.(value & opt int 0 & info [ "budget" ] ~doc:"Raw advice error budget B.")
  in
  let placement =
    Arg.(
      value & opt string "uniform"
      & info [ "placement" ] ~doc:"Error placement: uniform|focused|scattered|all-wrong.")
  in
  let adversary =
    Arg.(
      value & opt string "silent"
      & info [ "adversary" ]
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " adversary_names)))
  in
  let auth = Arg.(value & flag & info [ "auth" ] ~doc:"Use the authenticated stack.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full message trace.") in
  let monitor =
    Arg.(
      value & flag
      & info [ "monitor" ] ~doc:"Analyse the execution with the network-tap monitor.")
  in
  let value_prediction =
    Arg.(
      value
      & opt (some int) None
      & info [ "value-prediction" ]
          ~doc:"Give every process this predicted decision value (fast path; unauth only).")
  in
  Cmd.v
    (Cmd.info "bap_run" ~doc:"Run one Byzantine Agreement with Predictions execution")
    Term.(
      const run $ n $ t $ f $ m $ budget $ placement $ adversary $ auth $ seed $ trace
      $ monitor $ value_prediction)

let () = exit (Cmd.eval cmd)
