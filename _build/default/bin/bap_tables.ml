(* CLI: regenerate the experiment tables (E1-E8, see DESIGN.md and
   EXPERIMENTS.md).

   Examples:
     dune exec bin/bap_tables.exe                 # quick sweeps
     dune exec bin/bap_tables.exe -- --full       # paper-sized sweeps
     dune exec bin/bap_tables.exe -- --only E5 *)

open Cmdliner

let run full only =
  let quick = not full in
  match only with
  | None -> Bap_experiments.Runner.run_all ~quick ()
  | Some id ->
    if not (Bap_experiments.Runner.run_one ~quick id) then begin
      Fmt.epr "unknown experiment %S; known: %s@." id
        (String.concat ", " (List.map (fun (i, _, _) -> i) Bap_experiments.Runner.all));
      exit 1
    end

let cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-sized sweeps (slower).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~doc:"Run a single experiment (E1..E8).")
  in
  Cmd.v
    (Cmd.info "bap_tables" ~doc:"Regenerate the reproduction experiment tables")
    Term.(const run $ full $ only)

let () = exit (Cmd.eval cmd)
