bin/bap_run.mli:
