bin/bap_tables.mli:
