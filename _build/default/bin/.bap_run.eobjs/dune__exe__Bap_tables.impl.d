bin/bap_tables.ml: Arg Bap_experiments Cmd Cmdliner Fmt List String Term
