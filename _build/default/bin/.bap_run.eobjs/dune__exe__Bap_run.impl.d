bin/bap_run.ml: Arg Array Bap_adversary Bap_core Bap_monitor Bap_prediction Bap_sim Cmd Cmdliner Fmt Fun List Option Printf String Term
