(* Early-stopping phase-king BA: agreement, validity, and the O(f)
   early-stopping behaviour (decision within f+1 phases). *)

open Helpers

let gc_rounds = S.Graded_unauth.rounds

let run_es ?(adversary = Adversary.passive) ~n ~t ~phases ~faulty inputs =
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
        S.Early_stopping.run ctx ~gc ~gc_rounds ~phases ~base_tag:0
          inputs.(S.R.id ctx))
  in
  (S.R.honest_decisions outcome, outcome)

let phase_len = (2 * gc_rounds) + 1

let test_no_faults_one_phase () =
  let n = 7 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, _ = run_es ~n ~t ~phases:(t + 1) ~faulty:[||] inputs in
  Alcotest.(check bool) "agree" true (all_equal (List.map (fun (_, r) -> r.S.Early_stopping.value) decisions));
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "decided in phase 1" true
        (r.S.Early_stopping.decided_round <= phase_len))
    decisions

let test_validity () =
  let n = 10 and t = 3 in
  let decisions, _ =
    run_es ~adversary:(Adv.value_push ~v:9) ~n ~t ~phases:(t + 1) ~faulty:[| 0; 1; 2 |]
      (Array.make n 4)
  in
  List.iter
    (fun (_, r) -> Alcotest.(check int) "unanimity" 4 r.S.Early_stopping.value)
    decisions

let test_early_stopping_speed () =
  (* With f silent faults among the first kings, decision comes within
     f+1 phases (first honest king). Faulty = {0} kills king 1 only. *)
  let n = 10 and t = 3 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, _ =
    run_es ~adversary:Adversary.silent ~n ~t ~phases:(t + 1) ~faulty:[| 0 |] inputs
  in
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "decided by phase 2" true
        (r.S.Early_stopping.decided_round <= 2 * phase_len))
    decisions

let test_fixed_duration () =
  let n = 7 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outcome = run_es ~n ~t ~phases:(t + 1) ~faulty:[||] inputs in
  Alcotest.(check int) "padded to full duration" ((t + 1) * phase_len)
    outcome.S.R.rounds

let prop_agreement_validity =
  qcheck ~count:60 ~name:"ES agreement + validity under adversaries"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* which = int_range 0 3 in
      return (n, t, faulty, seed, which))
    (fun (n, t, faulty, seed, which) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let adversary =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | 2 -> Adv.equivocate ~v0:0 ~v1:1
        | _ -> Adv.staggered_crash ~interval:phase_len
      in
      let decisions, _ = run_es ~adversary ~n ~t ~phases:(t + 1) ~faulty inputs in
      let values = List.map (fun (_, r) -> r.S.Early_stopping.value) decisions in
      let honest = honest_ids ~n ~faulty in
      let honest_inputs = List.sort_uniq compare (List.map (fun i -> inputs.(i)) honest) in
      all_equal values
      && match honest_inputs with [ v ] -> List.for_all (( = ) v) values | _ -> true)

let prop_early_stopping_bound =
  qcheck ~count:40 ~name:"ES decides within f+1 phases (silent faults)"
    (config_gen ~t_of_n:(fun n -> (n - 1) / 3) ())
    (fun (n, t, faulty, seed) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let decisions, _ =
        run_es ~adversary:Adversary.silent ~n ~t ~phases:(t + 1) ~faulty inputs
      in
      let f = Array.length faulty in
      List.for_all
        (fun (_, r) -> r.S.Early_stopping.decided_round <= (f + 1) * phase_len)
        decisions)

let suite =
  [
    Alcotest.test_case "fault-free decides in phase 1" `Quick test_no_faults_one_phase;
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "early stopping speed" `Quick test_early_stopping_speed;
    Alcotest.test_case "fixed duration" `Quick test_fixed_duration;
    prop_agreement_validity;
    prop_early_stopping_bound;
  ]
