(* Shared fixtures for the test suites: one integer-valued stack,
   adversary strategies over it, and mini-harnesses that run a single
   sub-protocol for every process under a chosen fault set. *)

module V = Bap_core.Value.Int
module S = Bap_core.Stack.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (S.W)
module Adversary = Bap_sim.Adversary
module Advice = Bap_prediction.Advice
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Rng = Bap_sim.Rng
module Pki = Bap_crypto.Pki

let qcheck ?(count = 40) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Run one protocol body per process; returns the decisions array and
   the raw outcome. *)
let run_protocol ?(adversary = Adversary.passive) ?max_rounds ~n ~faulty body =
  S.R.run ?max_rounds ~n ~faulty ~adversary body

let honest_values outcome = List.map snd (S.R.honest_decisions outcome)

let all_equal = function
  | [] -> true
  | v :: rest -> List.for_all (( = ) v) rest

let is_faulty_array ~n faulty =
  let a = Array.make n false in
  Array.iter (fun j -> a.(j) <- true) faulty;
  a

(* Sample [f] distinct faulty identifiers from an rng. *)
let random_faulty rng ~n ~f = Array.of_list (Rng.sample_without_replacement rng f n)

(* A generator of small system configurations for property tests:
   (n, t, faulty set, seed). [t_of_n] bounds t (e.g. (n-1)/3). *)
let config_gen ?(min_n = 7) ?(max_n = 25) ~t_of_n () =
  QCheck2.Gen.(
    let* n = int_range min_n max_n in
    let t = t_of_n n in
    let* f = int_range 0 t in
    let* seed = int_range 0 1_000_000 in
    let rng = Rng.create seed in
    let faulty = random_faulty rng ~n ~f in
    return (n, t, faulty, seed))

let pp_config (n, t, faulty, seed) =
  Printf.sprintf "n=%d t=%d faulty=[%s] seed=%d" n t
    (String.concat ";" (Array.to_list (Array.map string_of_int faulty)))
    seed

(* Honest processes of a configuration, ascending. *)
let honest_ids ~n ~faulty =
  let is_faulty = is_faulty_array ~n faulty in
  List.filter (fun i -> not is_faulty.(i)) (List.init n Fun.id)
