(* Differential tests: independent implementations (or instantiations)
   that must behave identically on the same inputs.

   1. Plain unauthenticated graded consensus vs Algorithm 3 with
      L = {0..n-1} and k = t on a system with n = 3t + 1: the thresholds
      coincide (2k+1 = n-t, k+1 = t+1), so outputs must match exactly.
   2. Byzantine broadcast: [run_single] vs the same instance inside
      [run_parallel]. *)

open Helpers

let prop_gc_plain_vs_core_set =
  qcheck ~count:50 ~name:"plain GC == Alg 3 with full L at n = 3t+1"
    QCheck2.Gen.(
      let* t = int_range 1 5 in
      let n = (3 * t) + 1 in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* which = int_range 0 2 in
      return (n, t, f, seed, which))
    (fun (n, t, f, seed, which) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let inputs = Array.init n (fun _ -> Rng.int rng 3) in
      let adversary () =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | _ -> Adv.equivocate ~v0:0 ~v1:1
      in
      let all = List.init n Fun.id in
      let plain =
        run_protocol ~adversary:(adversary ()) ~n ~faulty (fun ctx ->
            S.Graded_unauth.run ctx ~t ~tag:7 inputs.(S.R.id ctx))
      in
      let core =
        run_protocol ~adversary:(adversary ()) ~n ~faulty (fun ctx ->
            S.Graded_core_set.run ctx ~k:t ~l_set:all ~tag:7 inputs.(S.R.id ctx))
      in
      S.R.honest_decisions plain = S.R.honest_decisions core)

let prop_bb_single_vs_parallel =
  qcheck ~count:40 ~name:"BB run_single == its slot of run_parallel"
    QCheck2.Gen.(
      let* n = int_range 5 12 in
      let* t = int_range 1 (n / 2) in
      let* k = int_range 1 3 in
      let* sender = int_range 0 (n - 1) in
      let* seed = int_range 0 1_000_000 in
      return (n, t, k, sender, seed))
    (fun (n, t, k, sender, seed) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 5) in
      (* Everyone is on the committee (certs for all), no faults: the
         parallel run must reproduce the single run slot for slot. *)
      let make_run single =
        let pki = Pki.create ~n in
        let cert i =
          Some
            {
              S.W.cc_member = i;
              cc_sigs =
                List.init (t + 1) (fun j ->
                    (j, Pki.sign (Pki.key pki j) (S.W.committee_payload i)));
            }
        in
        run_protocol ~n ~faulty:[||] (fun ctx ->
            let i = S.R.id ctx in
            if single then
              [| S.Bb_committee.run_single ctx ~pki ~key:(Pki.key pki i) ~t ~k ~tag:4
                   ~cc:(cert i) ~sender inputs.(i) |]
            else
              let all =
                S.Bb_committee.run_parallel ctx ~pki ~key:(Pki.key pki i) ~t ~k ~tag:4
                  ~cc:(cert i) inputs.(i)
              in
              [| all.(sender) |])
      in
      let single = make_run true and parallel = make_run false in
      List.map snd (S.R.honest_decisions single)
      = List.map snd (S.R.honest_decisions parallel))

let suite = [ prop_gc_plain_vs_core_set; prop_bb_single_vs_parallel ]
