(* Wire-format validation: committee certificates, message chains and
   Dolev-Strong chains must reject every tampering we can produce. *)

open Helpers
module W = S.W

let make_pki n = Pki.create ~n

let make_cert pki ~quorum ~member =
  {
    W.cc_member = member;
    cc_sigs =
      List.init quorum (fun j -> (j, Pki.sign (Pki.key pki j) (W.committee_payload member)));
  }

let test_committee_cert_valid () =
  let pki = make_pki 8 in
  let cert = make_cert pki ~quorum:3 ~member:5 in
  Alcotest.(check bool) "valid" true (W.valid_committee_cert pki ~quorum:3 cert)

let test_committee_cert_underfull () =
  let pki = make_pki 8 in
  let cert = make_cert pki ~quorum:2 ~member:5 in
  Alcotest.(check bool) "too few sigs" false (W.valid_committee_cert pki ~quorum:3 cert)

let test_committee_cert_duplicate_signers () =
  let pki = make_pki 8 in
  let s = Pki.sign (Pki.key pki 1) (W.committee_payload 5) in
  let cert = { W.cc_member = 5; cc_sigs = [ (1, s); (1, s); (1, s) ] } in
  Alcotest.(check bool) "duplicates rejected" false
    (W.valid_committee_cert pki ~quorum:3 cert)

let test_committee_cert_wrong_member () =
  let pki = make_pki 8 in
  let cert = make_cert pki ~quorum:3 ~member:5 in
  let stolen = { cert with W.cc_member = 6 } in
  Alcotest.(check bool) "sigs bound to member" false
    (W.valid_committee_cert pki ~quorum:3 stolen)

let make_root pki ~quorum ~sender v =
  let cert = make_cert pki ~quorum ~member:sender in
  let link_sig = Pki.sign (Pki.key pki sender) (W.chain_root_payload v cert) in
  W.Chain_root { value = v; cert; link_sig }

let extend pki ~quorum ~signer chain =
  let cert = make_cert pki ~quorum ~member:signer in
  let link_sig = Pki.sign (Pki.key pki signer) (W.chain_link_payload chain cert) in
  W.Chain_link { prev = chain; signer; cert; link_sig }

let test_chain_valid () =
  let pki = make_pki 8 in
  let c = make_root pki ~quorum:3 ~sender:4 77 in
  let c2 = extend pki ~quorum:3 ~signer:5 c in
  Alcotest.(check bool) "root valid" true (W.valid_chain pki ~quorum:3 ~sender:4 ~length:1 c);
  Alcotest.(check bool) "link valid" true (W.valid_chain pki ~quorum:3 ~sender:4 ~length:2 c2);
  Alcotest.(check int) "value" 77 (W.chain_value c2);
  Alcotest.(check (list int)) "signers" [ 4; 5 ] (W.chain_signers c2)

let test_chain_wrong_length () =
  let pki = make_pki 8 in
  let c = make_root pki ~quorum:3 ~sender:4 77 in
  Alcotest.(check bool) "length mismatch" false
    (W.valid_chain pki ~quorum:3 ~sender:4 ~length:2 c)

let test_chain_wrong_sender () =
  let pki = make_pki 8 in
  let c = make_root pki ~quorum:3 ~sender:4 77 in
  Alcotest.(check bool) "sender mismatch" false
    (W.valid_chain pki ~quorum:3 ~sender:5 ~length:1 c)

let test_chain_value_tamper () =
  let pki = make_pki 8 in
  match make_root pki ~quorum:3 ~sender:4 77 with
  | W.Chain_root r ->
    let tampered = W.Chain_root { r with value = 78 } in
    Alcotest.(check bool) "tampered value rejected" false
      (W.valid_chain pki ~quorum:3 ~sender:4 ~length:1 tampered)
  | W.Chain_link _ -> Alcotest.fail "unexpected"

let test_chain_duplicate_signer () =
  let pki = make_pki 8 in
  let c = make_root pki ~quorum:3 ~sender:4 77 in
  let c2 = extend pki ~quorum:3 ~signer:4 c in
  Alcotest.(check bool) "duplicate signer rejected" false
    (W.valid_chain pki ~quorum:3 ~sender:4 ~length:2 c2)

let test_chain_foreign_cert () =
  let pki = make_pki 8 in
  let c = make_root pki ~quorum:3 ~sender:4 77 in
  (* Signer 5 extends but presents 6's certificate. *)
  let cert6 = make_cert pki ~quorum:3 ~member:6 in
  let link_sig = Pki.sign (Pki.key pki 5) (W.chain_link_payload c cert6) in
  let c2 = W.Chain_link { prev = c; signer = 5; cert = cert6; link_sig } in
  Alcotest.(check bool) "cert must match signer" false
    (W.valid_chain pki ~quorum:3 ~sender:4 ~length:2 c2)

let make_ds_root pki ~sender v =
  let link_sig = Pki.sign (Pki.key pki sender) (W.ds_root_payload ~sender v) in
  W.Ds_root { sender; value = v; link_sig }

let ds_extend pki ~signer chain =
  let link_sig = Pki.sign (Pki.key pki signer) (W.ds_link_payload chain) in
  W.Ds_link { prev = chain; signer; link_sig }

let test_ds_chain_valid () =
  let pki = make_pki 6 in
  let c = make_ds_root pki ~sender:0 9 in
  let c2 = ds_extend pki ~signer:1 c in
  let c3 = ds_extend pki ~signer:2 c2 in
  Alcotest.(check bool) "length 3 valid" true
    (W.valid_ds_chain pki ~sender:0 ~length:3 c3);
  Alcotest.(check int) "value" 9 (W.ds_chain_value c3);
  Alcotest.(check (list int)) "signers in order" [ 0; 1; 2 ] (W.ds_chain_signers c3)

let test_ds_chain_duplicate () =
  let pki = make_pki 6 in
  let c = make_ds_root pki ~sender:0 9 in
  let c2 = ds_extend pki ~signer:0 c in
  Alcotest.(check bool) "duplicate signer rejected" false
    (W.valid_ds_chain pki ~sender:0 ~length:2 c2)

let test_ds_chain_tamper () =
  let pki = make_pki 6 in
  match make_ds_root pki ~sender:0 9 with
  | W.Ds_root r ->
    let tampered = W.Ds_root { r with value = 10 } in
    Alcotest.(check bool) "tamper rejected" false
      (W.valid_ds_chain pki ~sender:0 ~length:1 tampered)
  | W.Ds_link _ -> Alcotest.fail "unexpected"

let test_echo_cert () =
  let pki = make_pki 6 in
  let sv =
    {
      W.sv_dealer = 2;
      sv_value = 5;
      sv_sig = Pki.sign (Pki.key pki 2) (W.dealer_payload ~dealer:2 5);
    }
  in
  Alcotest.(check bool) "signed value valid" true (W.valid_signed_value pki sv);
  let cert =
    {
      W.ec_signed = sv;
      ec_echoes = List.init 4 (fun j -> (j, Pki.sign (Pki.key pki j) (W.echo_payload sv)));
    }
  in
  Alcotest.(check bool) "echo cert valid" true (W.valid_echo_cert pki ~threshold:4 cert);
  Alcotest.(check bool) "higher threshold fails" false
    (W.valid_echo_cert pki ~threshold:5 cert);
  (* Tampered inner value invalidates the dealer signature. *)
  let bad = { cert with W.ec_signed = { sv with W.sv_value = 6 } } in
  Alcotest.(check bool) "tampered dealer value" false
    (W.valid_echo_cert pki ~threshold:4 bad)

let suite =
  [
    Alcotest.test_case "committee cert valid" `Quick test_committee_cert_valid;
    Alcotest.test_case "committee cert underfull" `Quick test_committee_cert_underfull;
    Alcotest.test_case "committee cert duplicate signers" `Quick
      test_committee_cert_duplicate_signers;
    Alcotest.test_case "committee cert wrong member" `Quick test_committee_cert_wrong_member;
    Alcotest.test_case "chain valid" `Quick test_chain_valid;
    Alcotest.test_case "chain wrong length" `Quick test_chain_wrong_length;
    Alcotest.test_case "chain wrong sender" `Quick test_chain_wrong_sender;
    Alcotest.test_case "chain value tamper" `Quick test_chain_value_tamper;
    Alcotest.test_case "chain duplicate signer" `Quick test_chain_duplicate_signer;
    Alcotest.test_case "chain foreign certificate" `Quick test_chain_foreign_cert;
    Alcotest.test_case "ds chain valid" `Quick test_ds_chain_valid;
    Alcotest.test_case "ds chain duplicate signer" `Quick test_ds_chain_duplicate;
    Alcotest.test_case "ds chain tamper" `Quick test_ds_chain_tamper;
    Alcotest.test_case "echo certificates" `Quick test_echo_cert;
  ]
