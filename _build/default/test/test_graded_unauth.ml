(* Plain unauthenticated graded consensus (Theorem 7, t < n/3):
   strong unanimity, coherence, fixed duration, under several
   adversaries. *)

open Helpers

let run_gc ?(adversary = Adversary.passive) ~n ~t ~faulty inputs =
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        S.Graded_unauth.run ctx ~t ~tag:7 inputs.(S.R.id ctx))
  in
  (S.R.honest_decisions outcome, outcome)

let test_unanimity () =
  let n = 7 and t = 2 in
  let decisions, outcome = run_gc ~n ~t ~faulty:[| 0; 3 |] (Array.make n 42) in
  List.iter
    (fun (_, (v, g)) ->
      Alcotest.(check (pair int int)) "grade 1 on input" (42, 1) (v, g))
    decisions;
  Alcotest.(check int) "two rounds" 2 outcome.S.R.rounds

let test_unanimity_under_value_push () =
  let n = 10 and t = 3 in
  let decisions, _ =
    run_gc ~adversary:(Adv.value_push ~v:99) ~n ~t ~faulty:[| 1; 2; 3 |]
      (Array.make n 5)
  in
  List.iter
    (fun (_, (v, g)) -> Alcotest.(check (pair int int)) "unanimity holds" (5, 1) (v, g))
    decisions

let test_split_inputs_terminate () =
  let n = 7 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, outcome = run_gc ~n ~t ~faulty:[| 0 |] inputs in
  Alcotest.(check int) "everyone returns" (n - 1) (List.length decisions);
  Alcotest.(check int) "still two rounds" 2 outcome.S.R.rounds

let coherence_check decisions =
  let grade1 = List.filter (fun (_, (_, g)) -> g = 1) decisions in
  match grade1 with
  | [] -> true
  | (_, (v, _)) :: _ -> List.for_all (fun (_, (w, _)) -> w = v) decisions

let prop_coherence =
  qcheck ~count:80 ~name:"coherence under random splits and equivocation"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* adversary = int_range 0 3 in
      return (n, t, faulty, seed, adversary))
    (fun (n, t, faulty, seed, which) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 3) in
      let adversary =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | 2 -> Adv.equivocate ~v0:0 ~v1:1
        | _ -> Adv.echo_chaos ~v0:0 ~v1:2
      in
      let decisions, _ = run_gc ~adversary ~n ~t ~faulty inputs in
      coherence_check decisions)

let prop_unanimity =
  qcheck ~count:80 ~name:"strong unanimity under adversaries"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* adversary = int_range 0 3 in
      let* v = int_range 0 5 in
      return (n, t, faulty, seed, adversary, v))
    (fun (n, t, faulty, _seed, which, v) ->
      let adversary =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | 2 -> Adv.equivocate ~v0:(v + 1) ~v1:(v + 2)
        | _ -> Adv.value_push ~v:(v + 1)
      in
      let decisions, _ = run_gc ~adversary ~n ~t ~faulty (Array.make n v) in
      List.for_all (fun (_, (w, g)) -> w = v && g = 1) decisions)

(* Validity of outputs: a returned value is an honest input or the
   process's own input (no value invention), when the adversary is
   silent. *)
let prop_no_invention_silent =
  qcheck ~count:60 ~name:"no invented values against silent faults"
    (config_gen ~t_of_n:(fun n -> (n - 1) / 3) ())
    (fun (n, t, faulty, seed) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 4) in
      let honest = honest_ids ~n ~faulty in
      let honest_inputs = List.map (fun i -> inputs.(i)) honest in
      let decisions, _ = run_gc ~adversary:Adversary.silent ~n ~t ~faulty inputs in
      List.for_all (fun (_, (v, _)) -> List.mem v honest_inputs) decisions)

let suite =
  [
    Alcotest.test_case "strong unanimity" `Quick test_unanimity;
    Alcotest.test_case "unanimity under value push" `Quick test_unanimity_under_value_push;
    Alcotest.test_case "split inputs terminate in 2 rounds" `Quick
      test_split_inputs_terminate;
    prop_coherence;
    prop_unanimity;
    prop_no_invention_silent;
  ]
