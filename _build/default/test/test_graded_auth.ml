(* Authenticated graded consensus (Theorem 8 stand-in, t < n/2):
   strong unanimity, coherence, 3-round duration, resilience beyond n/3,
   under signature-equipped adversaries. *)

open Helpers

let run_gc ?adversary ~n ~t ~faulty inputs =
  let pki = Pki.create ~n in
  let adversary =
    match adversary with Some make -> make pki | None -> Adversary.passive
  in
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        S.Graded_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~tag:1 inputs.(i))
  in
  (S.R.honest_decisions outcome, outcome)

let test_unanimity () =
  let n = 7 and t = 3 in
  (* t = 3 of n = 7 is beyond n/3: only possible with authentication. *)
  let decisions, outcome = run_gc ~n ~t ~faulty:[| 0; 1; 2 |] (Array.make n 4) in
  Alcotest.(check int) "3 rounds" 3 outcome.S.R.rounds;
  List.iter
    (fun (_, (v, g)) -> Alcotest.(check (pair int int)) "grade 1" (4, 1) (v, g))
    decisions

let test_unanimity_under_silence () =
  let n = 9 and t = 4 in
  let decisions, _ =
    run_gc ~adversary:(fun _ -> Adversary.silent) ~n ~t ~faulty:[| 0; 2; 4; 6 |]
      (Array.make n 8)
  in
  List.iter
    (fun (_, (v, g)) -> Alcotest.(check (pair int int)) "grade 1" (8, 1) (v, g))
    decisions

(* A dealer-equivocation adversary: faulty dealers sign different values
   for different recipients in the gradecast init round. *)
let equivocating_dealer pki : Helpers.S.W.t Bap_sim.Adversary.t =
  Adversary.
    {
      name = "equivocating-dealer";
      make =
        (fun ~n:_ ~faulty ->
          let keys = Hashtbl.create 8 in
          Array.iter (fun j -> Hashtbl.replace keys j (Pki.key pki j)) faulty;
          let filter _view ~src outbox dst =
            List.map
              (fun m ->
                match m with
                | S.W.Gcast_init (tg, sv) when sv.S.W.sv_dealer = src ->
                  let v = if dst mod 2 = 0 then 100 else 200 in
                  let key = Hashtbl.find keys src in
                  let sv' =
                    {
                      S.W.sv_dealer = src;
                      sv_value = v;
                      sv_sig = Pki.sign key (S.W.dealer_payload ~dealer:src v);
                    }
                  in
                  S.W.Gcast_init (tg, sv')
                | m -> m)
              (outbox dst)
          in
          handlers ~filter ());
    }

let coherent decisions =
  match List.filter (fun (_, (_, g)) -> g = 1) decisions with
  | [] -> true
  | (_, (v, _)) :: _ -> List.for_all (fun (_, (w, _)) -> w = v) decisions

let test_equivocating_dealers () =
  let n = 9 and t = 4 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, _ =
    run_gc ~adversary:equivocating_dealer ~n ~t ~faulty:[| 0; 2; 4; 6 |] inputs
  in
  Alcotest.(check bool) "coherence despite equivocation" true (coherent decisions)

let prop_unanimity =
  qcheck ~count:50 ~name:"auth GC strong unanimity, t < n/2"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~max_n:17 ~t_of_n:(fun n -> (n - 1) / 2) () in
      let* v = int_range 0 5 in
      let* which = int_range 0 2 in
      return (n, t, faulty, seed, v, which))
    (fun (n, t, faulty, _seed, v, which) ->
      let adversary pki =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | _ -> equivocating_dealer pki
      in
      let decisions, _ = run_gc ~adversary ~n ~t ~faulty (Array.make n v) in
      List.for_all (fun (_, (w, g)) -> w = v && g = 1) decisions)

let prop_coherence =
  qcheck ~count:50 ~name:"auth GC coherence, t < n/2"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~max_n:17 ~t_of_n:(fun n -> (n - 1) / 2) () in
      let* which = int_range 0 2 in
      return (n, t, faulty, seed, which))
    (fun (n, t, faulty, seed, which) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 3) in
      let adversary pki =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | _ -> equivocating_dealer pki
      in
      let decisions, _ = run_gc ~adversary ~n ~t ~faulty inputs in
      coherent decisions)

let suite =
  [
    Alcotest.test_case "strong unanimity beyond n/3" `Quick test_unanimity;
    Alcotest.test_case "unanimity under silence" `Quick test_unanimity_under_silence;
    Alcotest.test_case "coherence under dealer equivocation" `Quick
      test_equivocating_dealers;
    prop_unanimity;
    prop_coherence;
  ]
