(* Algorithm 5 (unauthenticated conditional BA with classification):
   Theorem 5 - agreement and strong unanimity when k bounds the
   misclassifications and (2k+1)(3k+1) <= n - t - k; fixed round budget;
   per-process message cap. *)

open Helpers
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module C = Bap_core.Classification

(* Run classify then Algorithm 5 in one execution, as the wrapper
   does. *)
let run_ba ?(adversary = Adversary.passive) ~n ~t ~k ~faulty ~advice inputs =
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        let c = S.Classify_p.run ctx advice.(i) in
        S.Ba_class_unauth.run ctx ~t ~k ~base_tag:0 inputs.(i) c)
  in
  (S.R.honest_decisions outcome, outcome)

let test_feasibility () =
  Alcotest.(check bool) "k=1 needs n-t >= 13" true
    (S.Ba_class_unauth.feasible ~n:20 ~t:6 ~k:1);
  Alcotest.(check bool) "infeasible" false (S.Ba_class_unauth.feasible ~n:12 ~t:4 ~k:1);
  Alcotest.(check int) "max k grows with n" 2
    (S.Ba_class_unauth.max_feasible_k ~n:60 ~t:10)

let test_rounds_budget () =
  Alcotest.(check int) "5(2k+1)" 15 (S.Ba_class_unauth.rounds ~k:1);
  Alcotest.(check int) "k=3" 35 (S.Ba_class_unauth.rounds ~k:3)

let test_perfect_advice_agreement () =
  let n = 20 and t = 5 and k = 1 in
  let faulty = [| 3; 8 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, outcome = run_ba ~n ~t ~k ~faulty ~advice inputs in
  Alcotest.(check bool) "agreement" true (all_equal (List.map snd decisions));
  Alcotest.(check int) "exact duration (classify + 5(2k+1))" 16 outcome.S.R.rounds

let test_unanimity () =
  let n = 20 and t = 5 and k = 1 in
  let faulty = [| 1; 2 |] in
  let advice = Gen.perfect ~n ~faulty in
  let decisions, _ =
    run_ba ~adversary:(Adv.equivocate ~v0:3 ~v1:4) ~n ~t ~k ~faulty ~advice
      (Array.make n 7)
  in
  List.iter (fun (_, v) -> Alcotest.(check int) "kept input" 7 v) decisions

let test_message_cap_per_process () =
  (* Theorem 5: each honest process sends at most 5n messages (and the
     self-deliveries we do not count only lower this). *)
  let n = 20 and t = 5 and k = 1 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outcome = run_ba ~n ~t ~k ~faulty ~advice inputs in
  (* Subtract the classify round (n^2 messages) and check the total for
     Algorithm 5 against (2k+1)(3k+1) + k senders * 5 broadcasts. *)
  let alg5_messages =
    Array.fold_left ( + ) 0 outcome.S.R.honest_per_round
    - outcome.S.R.honest_per_round.(0)
  in
  let sender_bound = (((2 * k) + 1) * ((3 * k) + 1)) + k in
  Alcotest.(check bool) "O(n k^2) total" true
    (alg5_messages <= sender_bound * 5 * n)

let test_infeasible_k_skips () =
  let n = 10 and t = 3 and k = 2 in
  (* (2k+1)(3k+1) = 35 > n - t - k: protocol must skip silently. *)
  Alcotest.(check bool) "infeasible" false (S.Ba_class_unauth.feasible ~n ~t ~k);
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, outcome = run_ba ~n ~t ~k ~faulty ~advice inputs in
  (* Returns inputs unchanged, still consuming the round budget. *)
  Alcotest.(check int) "budget consumed" (1 + S.Ba_class_unauth.rounds ~k)
    outcome.S.R.rounds;
  List.iter
    (fun (i, v) -> Alcotest.(check int) "input returned" inputs.(i) v)
    decisions;
  (* And sends no Algorithm 5 messages at all. *)
  let alg5_messages =
    Array.fold_left ( + ) 0 outcome.S.R.honest_per_round
    - outcome.S.R.honest_per_round.(0)
  in
  Alcotest.(check int) "silent" 0 alg5_messages

let prop_agreement_when_k_covers =
  qcheck ~count:40 ~name:"Theorem 5: agreement when k >= k_A and feasible"
    QCheck2.Gen.(
      let* t = int_range 1 5 in
      let* f = int_range 0 t in
      let* k = int_range 1 2 in
      let* budget = int_range 0 3 in
      let* seed = int_range 0 1_000_000 in
      (* Choose n comfortably feasible: (2k+1)(3k+1) + k + t <= n. *)
      let n = (((2 * k) + 1) * ((3 * k) + 1)) + k + t + 5 in
      return (n, t, f, k, budget, seed))
    (fun (n, t, f, k, budget, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      (* Scattered errors never cause misclassification, so k_A = 0 <= k
         regardless of budget. *)
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Scattered in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let adversary = if seed mod 2 = 0 then Adversary.silent else Adv.equivocate ~v0:0 ~v1:1 in
      let decisions, _ = run_ba ~adversary ~n ~t ~k ~faulty ~advice inputs in
      all_equal (List.map snd decisions))

let prop_termination_always =
  qcheck ~count:30 ~name:"fixed duration whatever the advice"
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* k = int_range 1 2 in
      return (seed, k))
    (fun (seed, k) ->
      let n = 40 and t = 5 in
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f:t in
      let advice = Gen.generate ~rng ~n ~faulty ~budget:(n * n) Gen.All_wrong in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let _, outcome = run_ba ~adversary:Adversary.silent ~n ~t ~k ~faulty ~advice inputs in
      outcome.S.R.rounds = 1 + S.Ba_class_unauth.rounds ~k)

let suite =
  [
    Alcotest.test_case "feasibility condition" `Quick test_feasibility;
    Alcotest.test_case "round budget formula" `Quick test_rounds_budget;
    Alcotest.test_case "agreement with perfect advice" `Quick test_perfect_advice_agreement;
    Alcotest.test_case "strong unanimity" `Quick test_unanimity;
    Alcotest.test_case "message cap (Theorem 5)" `Quick test_message_cap_per_process;
    Alcotest.test_case "infeasible k skips silently" `Quick test_infeasible_k_skips;
    prop_agreement_when_k_covers;
    prop_termination_always;
  ]
