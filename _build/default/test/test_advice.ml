module Advice = Bap_prediction.Advice
module Quality = Bap_prediction.Quality
module Gen = Bap_prediction.Gen
module Rng = Bap_sim.Rng

let test_ground_truth () =
  let truth = Advice.ground_truth ~n:5 ~faulty:[| 1; 3 |] in
  Alcotest.(check (list bool)) "bits" [ true; false; true; false; true ]
    (Array.to_list (Advice.to_bool_array truth))

let test_set_flip_functional () =
  let a = Advice.make 4 true in
  let b = Advice.set a 2 false in
  Alcotest.(check bool) "original untouched" true (Advice.get a 2);
  Alcotest.(check bool) "copy changed" false (Advice.get b 2);
  let c = Advice.flip b 2 in
  Alcotest.(check bool) "flip back" true (Advice.get c 2)

let test_errors_against () =
  let truth = Advice.ground_truth ~n:6 ~faulty:[| 0 |] in
  let a = Advice.flip (Advice.flip truth 0) 5 in
  Alcotest.(check int) "two errors" 2 (Advice.errors_against ~truth a);
  Alcotest.(check (list int)) "positions" [ 0; 5 ] (Advice.error_positions ~truth a)

let test_pp () =
  let a = Advice.of_bool_array [| true; false; true |] in
  Alcotest.(check string) "render" "101" (Fmt.str "%a" Advice.pp a)

let test_quality_counts () =
  let n = 6 in
  let faulty = [| 0; 1 |] in
  let truth = Advice.ground_truth ~n ~faulty in
  let advice = Array.make n truth in
  (* honest process 2 wrongly trusts faulty 0 (B_F) and suspects honest 5 (B_H);
     faulty process 0's own garbage advice must not count. *)
  advice.(2) <- Advice.flip (Advice.flip truth 0) 5;
  advice.(0) <- Advice.init n (fun _ -> false);
  let stats = Quality.measure ~n ~faulty advice in
  Alcotest.(check int) "B" 2 stats.Quality.b;
  Alcotest.(check int) "B_F" 1 stats.Quality.b_f;
  Alcotest.(check int) "B_H" 1 stats.Quality.b_h;
  Alcotest.(check int) "per-subject 0" 1 stats.Quality.per_subject.(0);
  Alcotest.(check int) "per-subject 5" 1 stats.Quality.per_subject.(5)

let test_perfect_has_zero_errors () =
  let n = 9 and faulty = [| 2; 4 |] in
  let stats = Quality.measure ~n ~faulty (Gen.perfect ~n ~faulty) in
  Alcotest.(check int) "B = 0" 0 stats.Quality.b

let test_uniform_budget_exact () =
  let rng = Rng.create 17 in
  for budget = 0 to 30 do
    let n = 10 and faulty = [| 1; 2 |] in
    let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
    let stats = Quality.measure ~n ~faulty advice in
    Alcotest.(check int) (Printf.sprintf "budget %d" budget) budget stats.Quality.b
  done

let test_uniform_budget_capped () =
  let rng = Rng.create 17 in
  let n = 5 and faulty = [| 0 |] in
  (* capacity = 4 honest * 5 bits = 20 *)
  let advice = Gen.generate ~rng ~n ~faulty ~budget:1000 Gen.Uniform in
  let stats = Quality.measure ~n ~faulty advice in
  Alcotest.(check int) "capped at capacity" 20 stats.Quality.b

let test_all_wrong () =
  let n = 7 and faulty = [| 3 |] in
  let advice = Gen.generate ~rng:(Rng.create 1) ~n ~faulty ~budget:0 Gen.All_wrong in
  let stats = Quality.measure ~n ~faulty advice in
  Alcotest.(check int) "every honest bit wrong" ((n - 1) * n) stats.Quality.b

let test_focused_misclassifies_cheaply () =
  (* With a focused budget of (ceil((n+1)/2)) bits about one faulty
     process, every honest process can be made to trust it after the
     vote (given the faulty processes also vote for it). *)
  let n = 11 and faulty = [| 9; 10 |] in
  let rng = Rng.create 3 in
  let budget = 6 in
  let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Focused in
  let stats = Quality.measure ~n ~faulty advice in
  Alcotest.(check int) "budget honoured" budget stats.Quality.b;
  (* All errors concentrated on the first faulty subject. *)
  Alcotest.(check int) "concentrated" budget stats.Quality.per_subject.(9)

let test_scattered_never_misclassifies () =
  let n = 13 and faulty = [| 0; 1 |] in
  let rng = Rng.create 5 in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:40 Gen.Scattered in
  let stats = Quality.measure ~n ~faulty advice in
  Alcotest.(check bool) "some errors planted" true (stats.Quality.b > 0);
  (* No subject may reach the misclassification threshold even with all
     faulty votes colluding: fewer than ceil(n/2) - f wrong honest
     votes per subject. *)
  let f = Array.length faulty in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "below threshold" true (c < ((n + 1) / 2) - f))
    stats.Quality.per_subject

let suite =
  [
    Alcotest.test_case "ground truth" `Quick test_ground_truth;
    Alcotest.test_case "set/flip are functional" `Quick test_set_flip_functional;
    Alcotest.test_case "errors against truth" `Quick test_errors_against;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "quality counts B_F/B_H" `Quick test_quality_counts;
    Alcotest.test_case "perfect advice has B=0" `Quick test_perfect_has_zero_errors;
    Alcotest.test_case "uniform plants exact budget" `Quick test_uniform_budget_exact;
    Alcotest.test_case "uniform caps at capacity" `Quick test_uniform_budget_capped;
    Alcotest.test_case "all-wrong inverts every honest bit" `Quick test_all_wrong;
    Alcotest.test_case "focused concentrates errors" `Quick test_focused_misclassifies_cheaply;
    Alcotest.test_case "scattered stays below thresholds" `Quick
      test_scattered_never_misclassifies;
  ]
