(* Negative controls: the ablated wrapper configurations lose exactly
   the guarantee their component provides, while the full configuration
   keeps both. This pins down why Algorithm 1 interleaves an
   early-stopping BA with the conditional classification BA. *)

open Helpers
module Gen = Bap_prediction.Gen
module C = Bap_core.Classification

let worst_case ~n ~f ~m =
  let rng = Rng.create 1 in
  let faulty = Array.init f Fun.id in
  let per = max 1 (C.majority_threshold n - f) in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:(m * per) (Gen.Targeted per) in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  (faulty, advice, inputs)

let splitter ~n ~t = Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)

let run config ~n ~t ~f ~m =
  let faulty, advice, inputs = worst_case ~n ~f ~m in
  let o =
    S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:(splitter ~n ~t) ~config ()
  in
  (S.agreement o && S.unanimous_validity ~inputs ~faulty o, S.decision_round o)

let test_full_wrapper_survives_worst_case () =
  let n = 31 and t = 10 in
  let ok, _ = run (S.unauth_config ~t) ~n ~t ~f:t ~m:t in
  Alcotest.(check bool) "full wrapper agrees" true ok

let test_no_es_loses_agreement () =
  (* Same worst case without the early-stopping component: the
     classification BA never becomes feasible for k >= k_A at this n, so
     the honest processes can finish split. This is the E13 negative
     control; if it ever starts agreeing, the ablation experiment's
     narrative needs rechecking. *)
  let n = 31 and t = 10 in
  let cfg = { (S.unauth_config ~t) with S.Wrapper.ablate_es = true } in
  let ok, _ = run cfg ~n ~t ~f:t ~m:t in
  Alcotest.(check bool) "agreement lost without early stopping" false ok

let test_no_bc_still_safe_but_slow () =
  let n = 31 and t = 10 in
  let full_ok, full_round = run (S.unauth_config ~t) ~n ~t ~f:t ~m:0 in
  let cfg = { (S.unauth_config ~t) with S.Wrapper.ablate_bc = true } in
  let ok, round = run cfg ~n ~t ~f:t ~m:0 in
  Alcotest.(check bool) "still safe" true (ok && full_ok);
  Alcotest.(check bool) "but loses the good-advice speedup" true (round > full_round)

let test_ablation_keeps_schedule () =
  (* The ablated components are replaced by silence of the same
     duration, so the deterministic schedule (and hence lock-step) is
     unchanged. *)
  let t = 5 in
  let full = S.unauth_config ~t in
  let no_es = { full with S.Wrapper.ablate_es = true } in
  let no_bc = { full with S.Wrapper.ablate_bc = true } in
  Alcotest.(check int) "no_es same duration" (S.Wrapper.rounds full ~t)
    (S.Wrapper.rounds no_es ~t);
  Alcotest.(check int) "no_bc same duration" (S.Wrapper.rounds full ~t)
    (S.Wrapper.rounds no_bc ~t)

let suite =
  [
    Alcotest.test_case "full wrapper survives the worst case" `Quick
      test_full_wrapper_survives_worst_case;
    Alcotest.test_case "ablating early stopping loses agreement" `Quick
      test_no_es_loses_agreement;
    Alcotest.test_case "ablating class-BA stays safe but slow" `Quick
      test_no_bc_still_safe_but_slow;
    Alcotest.test_case "ablations keep the schedule" `Quick test_ablation_keeps_schedule;
  ]
