(* Reproducibility: the whole system is deterministic - identical
   parameters and seeds produce byte-identical outcomes, whatever the
   protocol, adversary or advice. This is what makes the experiment
   tables machine-independent. *)

open Helpers
module Gen = Bap_prediction.Gen

let outcome_fingerprint (o : _ S.R.outcome) =
  ( o.S.R.rounds,
    o.S.R.honest_sent,
    o.S.R.honest_bits,
    o.S.R.adversary_sent,
    Array.to_list o.S.R.decision_round,
    List.map
      (fun (i, r) -> (i, r.S.Wrapper.value, r.S.Wrapper.decided_round))
      (S.R.honest_decisions o) )

let prop_wrapper_deterministic =
  qcheck ~count:20 ~name:"identical runs produce identical outcomes"
    QCheck2.Gen.(
      let* n = int_range 7 18 in
      let t = (n - 1) / 3 in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* budget = int_range 0 n in
      let* which = int_range 0 3 in
      return (n, t, f, seed, budget, which))
    (fun (n, t, f, seed, budget, which) ->
      let run () =
        let rng = Rng.create seed in
        let faulty = random_faulty rng ~n ~f in
        let inputs = Array.init n (fun _ -> Rng.int rng 2) in
        let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
        let adversary =
          match which with
          | 0 -> Adversary.passive
          | 1 -> Adversary.silent
          | 2 -> Adv.equivocate ~v0:0 ~v1:1
          | _ -> Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r)
        in
        outcome_fingerprint (S.run_unauth ~t ~faulty ~inputs ~advice ~adversary ())
      in
      run () = run ())

let prop_generators_deterministic =
  qcheck ~count:40 ~name:"advice generators reproduce from seeds"
    QCheck2.Gen.(
      let* n = int_range 5 30 in
      let* f = int_range 0 (n / 3) in
      let* seed = int_range 0 1_000_000 in
      let* budget = int_range 0 (n * 2) in
      let* placement = int_range 0 3 in
      return (n, f, seed, budget, placement))
    (fun (n, f, seed, budget, placement) ->
      let make () =
        let rng = Rng.create seed in
        let faulty = random_faulty rng ~n ~f in
        let p =
          match placement with
          | 0 -> Gen.Uniform
          | 1 -> Gen.Focused
          | 2 -> Gen.Scattered
          | _ -> Gen.Targeted 3
        in
        let advice = Gen.generate ~rng ~n ~faulty ~budget p in
        Array.to_list (Array.map (fun a -> Fmt.str "%a" Advice.pp a) advice)
      in
      make () = make ())

let suite = [ prop_wrapper_deterministic; prop_generators_deterministic ]
