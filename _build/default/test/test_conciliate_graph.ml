(* Message-level verification of the conciliation leader-graph logic
   (Algorithm 4, lines 2-5): handcrafted rounds in which the faulty
   senders craft specific Conc messages, checked against hand-computed
   minima and pluralities. These pin the exact graph semantics the
   Section 7 lemmas rely on: edges (y, z) iff y is in z's declared set,
   sources qualify iff self-listed, minima flow along reverse paths. *)

open Helpers
module W = S.W

(* Drive a single conciliation round where the faulty process sends a
   custom Conc (or nothing) per recipient. *)
let run_conciliation ~n ~l_sets ~inputs ~faulty_msg =
  let adversary =
    Bap_sim.Adversary.
      {
        name = "scripted";
        make =
          (fun ~n:_ ~faulty:_ ->
            handlers
              ~filter:(fun _view ~src:_ _outbox dst -> faulty_msg dst)
              ());
      }
  in
  let outcome =
    run_protocol ~adversary ~n ~faulty:[| 0 |] (fun ctx ->
        let i = S.R.id ctx in
        S.Conciliate.run ctx ~l_set:l_sets.(i) ~tag:9 inputs.(i))
  in
  S.R.honest_decisions outcome

let test_min_flows_through_graph () =
  (* n = 5, L = {1,2,3,4} for everyone (all honest, k has no role at the
     message level). Inputs 9,8,7,6: minimum 6 must win everywhere. *)
  let n = 5 in
  let l = [ 1; 2; 3; 4 ] in
  let l_sets = Array.make n l in
  let inputs = [| 0; 9; 8; 7; 6 |] in
  let decisions = run_conciliation ~n ~l_sets ~inputs ~faulty_msg:(fun _ -> []) in
  List.iter (fun (_, v) -> Alcotest.(check int) "minimum wins" 6 v) decisions

let test_unlisted_sources_do_not_count () =
  (* Process 4 holds the minimum but is not in anyone's L set and its own
     declared set is its L (without itself), so it does not qualify: the
     minimum among qualified sources is 7. *)
  let n = 5 in
  let l_sets = [| [ 1; 2; 3 ]; [ 1; 2; 3 ]; [ 1; 2; 3 ]; [ 1; 2; 3 ]; [ 1; 2; 3 ] |] in
  let inputs = [| 0; 9; 8; 7; 1 |] in
  let decisions = run_conciliation ~n ~l_sets ~inputs ~faulty_msg:(fun _ -> []) in
  List.iter
    (fun (_, v) -> Alcotest.(check int) "non-member minimum ignored" 7 v)
    decisions

let test_faulty_selective_reveal_splits () =
  (* The faulty process 0 declares itself its own leader set and reveals
     a below-domain value only to even recipients: their minima absorb
     it while odd recipients never see it - the divergence the
     adaptive splitter exploits, and exactly what the honest-L-condition
     of Lemma 13 excludes. *)
  let n = 5 in
  let l = [ 0; 1; 2; 3 ] in
  let l_sets = Array.make n l in
  let inputs = [| 0; 9; 8; 7; 6 |] in
  let faulty_msg dst = if dst mod 2 = 0 then [ W.Conc (9, -100, [ 0 ]) ] else [] in
  let decisions = run_conciliation ~n ~l_sets ~inputs ~faulty_msg in
  List.iter
    (fun (i, v) ->
      if i mod 2 = 0 then Alcotest.(check int) "even sees junk" (-100) v
      else Alcotest.(check int) "odd sees honest min" 7 v)
    decisions

let test_declared_set_defines_edges () =
  (* Process 1 declares only itself: its value cannot flow to other
     vertices, but it is in everyone's L and self-listed, so m[1] is its
     own value, while m[2], m[3] see only each other's. *)
  let n = 4 in
  let l_sets = [| [ 1; 2; 3 ]; [ 1 ]; [ 2; 3 ]; [ 2; 3 ] |] in
  let inputs = [| 0; 1; 5; 4 |] in
  let decisions = run_conciliation ~n ~l_sets ~inputs ~faulty_msg:(fun _ -> []) in
  (* Multiset of minima over T cap L for an honest observer with
     L = {1,2,3} (observer 0 is the faulty slot; observers 2 and 3 have
     L = {2,3}): for observer with L={2,3}: m[2] = m[3] = min(5,4) = 4. *)
  List.iter
    (fun (i, v) ->
      if i >= 2 then Alcotest.(check int) "component minimum" 4 v)
    decisions

let suite =
  [
    Alcotest.test_case "minimum flows through the graph" `Quick test_min_flows_through_graph;
    Alcotest.test_case "unlisted sources do not count" `Quick
      test_unlisted_sources_do_not_count;
    Alcotest.test_case "selective reveal splits minima" `Quick
      test_faulty_selective_reveal_splits;
    Alcotest.test_case "declared sets define the edges" `Quick
      test_declared_set_defines_edges;
  ]
