(* Algorithm 6 (Byzantine Broadcast with Implicit Committee):
   Lemmas 21-23 - validity with sender certificate, default without,
   committee agreement with at most k faulty certified members. *)

open Helpers

(* Build committee certificates by hand: members get t+1 signatures from
   processes 0..t. *)
let make_cert pki ~t ~member =
  {
    S.W.cc_member = member;
    cc_sigs =
      List.init (t + 1) (fun j ->
          (j, Pki.sign (Pki.key pki j) (S.W.committee_payload member)));
  }

let run_bb ?adversary ~n ~t ~k ~faulty ~sender ~committee ~inputs () =
  let pki = Pki.create ~n in
  let adversary =
    match adversary with Some make -> make pki | None -> Adversary.passive
  in
  let certs =
    Array.init n (fun i ->
        if List.mem i committee then Some (make_cert pki ~t ~member:i) else None)
  in
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        S.Bb_committee.run_single ctx ~pki ~key:(Pki.key pki i) ~t ~k ~tag:4
          ~cc:certs.(i) ~sender inputs.(i))
  in
  (S.R.honest_decisions outcome, outcome, pki)

let test_validity_with_cert () =
  let n = 8 and t = 2 and k = 1 in
  let inputs = Array.make n 0 in
  inputs.(0) <- 42;
  let decisions, outcome, _ =
    run_bb ~n ~t ~k ~faulty:[| 5 |] ~sender:0 ~committee:[ 0; 1; 5 ] ~inputs ()
  in
  List.iter
    (fun (_, v) -> Alcotest.(check (option int)) "sender value" (Some 42) v)
    decisions;
  Alcotest.(check int) "k+1 rounds" (k + 1) outcome.S.R.rounds

let test_default_without_cert () =
  let n = 8 and t = 2 and k = 1 in
  let inputs = Array.make n 7 in
  let decisions, _, _ =
    run_bb ~n ~t ~k ~faulty:[||] ~sender:0 ~committee:[ 1; 2 ] ~inputs ()
  in
  List.iter
    (fun (_, v) -> Alcotest.(check (option int)) "bot" None v)
    decisions

(* A faulty certified sender that equivocates: starts chains for two
   different values towards different halves. Committee agreement
   (Lemma 23) must still hold among certified honest members. *)
let equivocating_sender pki ~t ~sender : Helpers.S.W.t Bap_sim.Adversary.t =
  Adversary.
    {
      name = "equivocating-bb-sender";
      make =
        (fun ~n:_ ~faulty:_ ->
          let key = Pki.key pki sender in
          let cert = make_cert pki ~t ~member:sender in
          let inject view =
            if view.round = 1 then
              List.init view.n (fun dst ->
                  let v = if dst mod 2 = 0 then 10 else 20 in
                  let link_sig = Pki.sign key (S.W.chain_root_payload v cert) in
                  {
                    src = sender;
                    dst;
                    payload =
                      S.W.Bb_chain (4, sender, S.W.Chain_root { value = v; cert; link_sig });
                  })
            else []
          in
          handlers ~filter:(fun _ ~src:_ _ _ -> []) ~inject ());
    }

let test_committee_agreement_equivocating_sender () =
  let n = 10 and t = 3 and k = 2 in
  let inputs = Array.make n 0 in
  let committee = [ 0; 1; 2; 3 ] in
  let decisions, _, _ =
    run_bb
      ~adversary:(fun pki -> equivocating_sender pki ~t ~sender:0)
      ~n ~t ~k ~faulty:[| 0 |] ~sender:0 ~committee ~inputs ()
  in
  (* All honest certified members must return the same value. *)
  let certified_decisions =
    List.filter (fun (i, _) -> List.mem i committee) decisions
  in
  Alcotest.(check bool) "committee agreement" true
    (all_equal (List.map snd certified_decisions))

let test_relay_through_rounds () =
  (* The sender reveals its chain only to one committee member; the
     value must still spread to everyone within k+1 rounds via
     relaying. *)
  let n = 10 and t = 3 and k = 2 in
  let sender = 0 in
  let reveal_to_one pki : Helpers.S.W.t Bap_sim.Adversary.t =
    Adversary.
      {
        name = "reveal-to-one";
        make =
          (fun ~n:_ ~faulty:_ ->
            let key = Pki.key pki sender in
            let cert = make_cert pki ~t ~member:sender in
            let inject view =
              if view.round = 1 then begin
                let v = 33 in
                let link_sig = Pki.sign key (S.W.chain_root_payload v cert) in
                [
                  {
                    src = sender;
                    dst = 1;
                    payload =
                      S.W.Bb_chain (4, sender, S.W.Chain_root { value = v; cert; link_sig });
                  };
                ]
              end
              else []
            in
            handlers ~filter:(fun _ ~src:_ _ _ -> []) ~inject ());
      }
  in
  let inputs = Array.make n 0 in
  let decisions, _, _ =
    run_bb ~adversary:reveal_to_one ~n ~t ~k ~faulty:[| 0 |] ~sender
      ~committee:[ 0; 1; 2; 3 ] ~inputs ()
  in
  (* Process 1 (certified) relays; every certified honest process ends
     with the same output; value 33 is the only candidate. *)
  let certified = List.filter (fun (i, _) -> List.mem i [ 1; 2; 3 ]) decisions in
  Alcotest.(check bool) "committee agreement" true (all_equal (List.map snd certified));
  List.iter
    (fun (_, v) ->
      match v with
      | Some x -> Alcotest.(check int) "relayed value" 33 x
      | None -> ())
    certified

let test_forged_cert_rejected () =
  (* A sender whose "certificate" has too few signatures is ignored:
     like having no certificate at all. *)
  let n = 8 and t = 3 and k = 1 in
  let pki = Pki.create ~n in
  let weak_cert =
    {
      S.W.cc_member = 0;
      cc_sigs = [ (1, Pki.sign (Pki.key pki 1) (S.W.committee_payload 0)) ];
    }
  in
  let outcome =
    run_protocol ~n ~faulty:[||] (fun ctx ->
        let i = S.R.id ctx in
        let cc = if i = 0 then Some weak_cert else None in
        S.Bb_committee.run_single ctx ~pki ~key:(Pki.key pki i) ~t ~k ~tag:4 ~cc
          ~sender:0 55)
  in
  List.iter
    (fun (_, v) -> Alcotest.(check (option int)) "bot" None v)
    (S.R.honest_decisions outcome)

let prop_validity =
  qcheck ~count:40 ~name:"Lemma 21: honest certified sender's value delivered"
    QCheck2.Gen.(
      let* n = int_range 6 16 in
      let* t = int_range 1 ((n - 1) / 2) in
      let* k = int_range 1 3 in
      let* f = int_range 0 (min t (n - 2)) in
      let* seed = int_range 0 1_000_000 in
      let* v = int_range 0 100 in
      return (n, t, k, f, seed, v))
    (fun (n, t, k, f, seed, v) ->
      let rng = Rng.create seed in
      (* sender 0 honest: sample faults among 1..n-1 *)
      let faulty =
        Array.of_list
          (List.map (fun x -> x + 1) (Bap_sim.Rng.sample_without_replacement rng f (n - 1)))
      in
      let inputs = Array.make n 0 in
      inputs.(0) <- v;
      (* committee: sender + up to k faulty members *)
      let committee = 0 :: Array.to_list (Array.sub faulty 0 (min k f)) in
      let decisions, _, _ =
        run_bb ~n ~t ~k ~faulty ~sender:0 ~committee ~inputs ()
      in
      List.for_all (fun (_, d) -> d = Some v) decisions)

let suite =
  [
    Alcotest.test_case "validity with sender certificate" `Quick test_validity_with_cert;
    Alcotest.test_case "default without sender certificate" `Quick test_default_without_cert;
    Alcotest.test_case "committee agreement vs equivocating sender" `Quick
      test_committee_agreement_equivocating_sender;
    Alcotest.test_case "relay spreads a selectively revealed chain" `Quick
      test_relay_through_rounds;
    Alcotest.test_case "forged certificate rejected" `Quick test_forged_cert_rejected;
    prop_validity;
  ]
