(* Scaling shapes as tests: fit the empirical exponent of each
   complexity curve and assert it sits in the band the theory predicts.
   These are the automated versions of the E3/E4/E10 tables. *)

open Helpers
module Gen = Bap_prediction.Gen
module Series = Bap_stats.Series
module B = Bap_baselines.Baseline_runs.Make (Bap_core.Value.Int)

let test_linear_fit () =
  let slope, intercept = Series.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 0.001)) "slope" 2.0 slope;
  Alcotest.(check (float 0.001)) "intercept" 1.0 intercept

let test_loglog_exact_square () =
  let points = List.map (fun x -> (float_of_int x, float_of_int (x * x))) [ 2; 5; 9; 17 ] in
  Alcotest.(check (float 0.001)) "exponent 2" 2.0 (Series.loglog_slope points)

let unauth_messages n =
  let t = (n - 1) / 3 in
  let f = t / 2 in
  let rng = Rng.create (100 + n) in
  let faulty = Array.init f Fun.id in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Gen.perfect ~n ~faulty in
  let o = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Adversary.silent () in
  (float_of_int n, float_of_int o.S.R.honest_sent)

let test_unauth_message_exponent () =
  (* Theorem 11: O(n^2 log .) messages; measured exponent must be near
     2 (the log factor is flat for the fixed phase count here). *)
  let points = List.map unauth_messages [ 13; 19; 28; 40 ] in
  let s = Series.loglog_slope points in
  if s < 1.6 || s > 2.4 then Alcotest.failf "message exponent %.2f outside [1.6, 2.4]" s

let test_dolev_strong_rounds_linear_in_t () =
  (* Always exactly t + 1 rounds: slope 1 in t. *)
  let rounds t =
    let n = (2 * t) + 3 in
    let inputs = Array.init n (fun i -> i mod 2) in
    let s = B.run_dolev_strong ~t ~faulty:[| 0 |] ~inputs () in
    (* rounds = t + 1 exactly; subtract the additive constant so the
       log-log exponent is clean. *)
    (float_of_int t, float_of_int (s.B.rounds - 1))
  in
  let s = Series.loglog_slope (List.map rounds [ 2; 4; 8 ]) in
  if s < 0.99 || s > 1.01 then Alcotest.failf "DS round exponent %.2f outside [0.99, 1.01]" s

let test_classify_bits_cubic () =
  (* The advice round alone: n^2 messages of ~n bits each. *)
  let bits n =
    let rng = Rng.create n in
    ignore rng;
    let faulty = [||] in
    let advice = Gen.perfect ~n ~faulty in
    let o =
      S.R.run ~n ~faulty ~adversary:Adversary.passive ~msg_size:S.W.size_bits (fun ctx ->
          S.Classify_p.run ctx advice.(S.R.id ctx))
    in
    (float_of_int n, float_of_int o.S.R.honest_bits)
  in
  let s = Series.loglog_slope (List.map bits [ 32; 64; 128; 256 ]) in
  if s < 2.5 || s > 3.2 then Alcotest.failf "classify bit exponent %.2f outside [2.5, 3.2]" s

let suite =
  [
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "loglog recovers exponent" `Quick test_loglog_exact_square;
    Alcotest.test_case "unauth messages scale as ~n^2" `Quick test_unauth_message_exponent;
    Alcotest.test_case "Dolev-Strong rounds linear in t" `Quick
      test_dolev_strong_rounds_linear_in_t;
    Alcotest.test_case "classify bits scale as ~n^3" `Quick test_classify_bits_cubic;
  ]
