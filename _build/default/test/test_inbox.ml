module Inbox = Bap_sim.Inbox

let parse = function `A x -> Some x | `B -> None

let test_first_takes_one_per_sender () =
  let inbox = [| [ `A 1; `A 2 ]; [ `B; `A 3 ]; []; [ `B ] |] in
  let got = Inbox.first inbox ~f:parse in
  Alcotest.(check (array (option int))) "first match per sender"
    [| Some 1; Some 3; None; None |] got

let test_all_keeps_everything () =
  let inbox = [| [ `A 1; `A 2 ]; [ `B; `A 3 ] |] in
  let got = Inbox.all inbox ~f:parse in
  Alcotest.(check (array (list int))) "all matches" [| [ 1; 2 ]; [ 3 ] |] got

let test_count () =
  let votes = [| Some 1; Some 2; Some 1; None; Some 1 |] in
  Alcotest.(check int) "count of 1" 3 (Inbox.count votes ~eq:Int.equal 1);
  Alcotest.(check int) "count of 2" 1 (Inbox.count votes ~eq:Int.equal 2);
  Alcotest.(check int) "count of 9" 0 (Inbox.count votes ~eq:Int.equal 9)

let test_plurality () =
  let votes = [| Some 5; Some 3; Some 5; Some 3; Some 1 |] in
  (* tie between 5 and 3 broken towards the smaller value *)
  Alcotest.(check (option (pair int int))) "tie to smallest" (Some (3, 2))
    (Inbox.plurality votes ~compare:Int.compare)

let test_plurality_clear_winner () =
  let votes = [| Some 5; Some 5; Some 3; Some 5; None |] in
  Alcotest.(check (option (pair int int))) "clear winner" (Some (5, 3))
    (Inbox.plurality votes ~compare:Int.compare)

let test_plurality_empty () =
  Alcotest.(check (option (pair int int))) "all none" None
    (Inbox.plurality [| None; None |] ~compare:Int.compare)

let test_senders () =
  let votes = [| Some 'x'; None; Some 'y'; None; Some 'z' |] in
  Alcotest.(check (list int)) "sender ids" [ 0; 2; 4 ] (Inbox.senders votes)

let suite =
  [
    Alcotest.test_case "first takes one per sender" `Quick test_first_takes_one_per_sender;
    Alcotest.test_case "all keeps everything" `Quick test_all_keeps_everything;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "plurality ties to smallest" `Quick test_plurality;
    Alcotest.test_case "plurality clear winner" `Quick test_plurality_clear_winner;
    Alcotest.test_case "plurality of empty" `Quick test_plurality_empty;
    Alcotest.test_case "senders" `Quick test_senders;
  ]
