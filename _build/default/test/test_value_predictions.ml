(* The value-prediction fast path (extension; wrapper's
   [?value_prediction]): O(1) decisions on shared accurate predictions,
   unconditional safety otherwise. *)

open Helpers
module Gen = Bap_prediction.Gen

let splitter ~n ~t = Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r)

let test_shared_prediction_fast () =
  let n = 13 and t = 4 and f = 4 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 3 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:(n * n) Gen.All_wrong in
  let o =
    S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:(splitter ~n ~t)
      ~value_predictions:(Array.make n 1) ()
  in
  Alcotest.(check bool) "agreement" true (S.agreement o);
  (* classify (1) + two graded consensus (4) = decided by round 5 *)
  Alcotest.(check bool) "O(1) decision" true (S.decision_round o <= 5);
  List.iter
    (fun (_, r) -> Alcotest.(check int) "decides the prediction" 1 r.S.Wrapper.value)
    (S.R.honest_decisions o)

let test_unanimous_inputs_beat_predictions () =
  (* Strong unanimity must override even a universally shared (but
     input-contradicting) value prediction. *)
  let n = 13 and t = 4 in
  let faulty = [| 0; 1 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.make n 7 in
  let o =
    S.run_unauth ~t ~faulty ~inputs ~advice ~value_predictions:(Array.make n 9) ()
  in
  Alcotest.(check bool) "validity wins" true (S.unanimous_validity ~inputs ~faulty o)

let prop_safety_any_predictions =
  qcheck ~count:40 ~name:"agreement + validity under arbitrary value predictions"
    QCheck2.Gen.(
      let* n = int_range 7 20 in
      let t = (n - 1) / 3 in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* which = int_range 0 2 in
      return (n, t, f, seed, which))
    (fun (n, t, f, seed, which) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let preds = Array.init n (fun _ -> Rng.int rng 4) in
      let advice = Gen.generate ~rng ~n ~faulty ~budget:(Rng.int rng (n + 1)) Gen.Uniform in
      let adversary =
        match which with
        | 0 -> Adversary.silent
        | 1 -> Adv.equivocate ~v0:0 ~v1:1
        | _ -> splitter ~n ~t
      in
      let o =
        S.run_unauth ~t ~faulty ~inputs ~advice ~adversary ~value_predictions:preds ()
      in
      S.agreement o && S.unanimous_validity ~inputs ~faulty o)

let test_schedule_includes_fast_path () =
  let t = 4 in
  let cfg = S.unauth_config ~t in
  let with_vp = S.Wrapper.rounds ~value_prediction:true cfg ~t in
  let without = S.Wrapper.rounds cfg ~t in
  Alcotest.(check int) "two extra graded consensus" (2 * cfg.S.Wrapper.gc_rounds)
    (with_vp - without)

let suite =
  [
    Alcotest.test_case "shared predictions decide in O(1)" `Quick
      test_shared_prediction_fast;
    Alcotest.test_case "unanimous inputs beat predictions" `Quick
      test_unanimous_inputs_beat_predictions;
    prop_safety_any_predictions;
    Alcotest.test_case "schedule includes the fast path" `Quick
      test_schedule_includes_fast_path;
  ]
