(* Algorithm 7 (authenticated conditional BA with classification):
   Theorem 6 and the committee bounds of Lemma 24. *)

open Helpers
module Gen = Bap_prediction.Gen
module C = Bap_core.Classification

let run_ba ?adversary ~n ~t ~k ~faulty ~advice inputs =
  let pki = Pki.create ~n in
  let adversary =
    match adversary with Some make -> make pki | None -> Adversary.passive
  in
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        let c = S.Classify_p.run ctx advice.(i) in
        S.Ba_class_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~k ~base_tag:0
          inputs.(i) c)
  in
  (S.R.honest_decisions outcome, outcome)

let test_feasibility () =
  (* 2k+1 <= n - t - k and t < n/2. *)
  Alcotest.(check bool) "feasible" true (S.Ba_class_auth.feasible ~n:10 ~t:4 ~k:1);
  Alcotest.(check bool) "t too large" false (S.Ba_class_auth.feasible ~n:10 ~t:5 ~k:1);
  Alcotest.(check bool) "k too large" false (S.Ba_class_auth.feasible ~n:10 ~t:4 ~k:2);
  Alcotest.(check int) "rounds k+3" 5 (S.Ba_class_auth.rounds ~k:2)

let test_agreement_beyond_third () =
  (* t = 4 of n = 10 faulty: impossible without signatures. *)
  let n = 10 and t = 4 and k = 1 in
  let faulty = [| 0; 1; 2; 3 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, outcome = run_ba ~n ~t ~k ~faulty ~advice inputs in
  Alcotest.(check bool) "agreement" true (all_equal (List.map snd decisions));
  Alcotest.(check int) "classify + k+3 rounds" (1 + S.Ba_class_auth.rounds ~k)
    outcome.S.R.rounds

let test_unanimity () =
  let n = 12 and t = 5 and k = 1 in
  let faulty = [| 7; 8; 9 |] in
  let advice = Gen.perfect ~n ~faulty in
  let decisions, _ =
    run_ba
      ~adversary:(fun pki -> Adv.committee_infiltrator ~pki ~v0:5 ~v1:6)
      ~n ~t ~k ~faulty ~advice (Array.make n 3)
  in
  List.iter (fun (_, v) -> Alcotest.(check int) "input decided" 3 v) decisions

let test_infeasible_skips () =
  let n = 8 and t = 3 and k = 3 in
  Alcotest.(check bool) "infeasible" false (S.Ba_class_auth.feasible ~n ~t ~k);
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, outcome = run_ba ~n ~t ~k ~faulty ~advice inputs in
  Alcotest.(check int) "budget consumed" (1 + S.Ba_class_auth.rounds ~k)
    outcome.S.R.rounds;
  List.iter (fun (i, v) -> Alcotest.(check int) "input returned" inputs.(i) v) decisions

(* Lemma 24: measure the committee directly by running only the vote
   round logic through classification. With perfect advice and passive
   faults, the committee is the first 2k+1 honest processes. *)
let test_committee_agreement_infiltrated () =
  (* Misclassify one faulty process as honest via focused advice errors
     so it enters the committee, then let it equivocate in the
     broadcasts; k = 1 tolerates exactly that. *)
  let n = 15 and t = 4 and k = 1 in
  let faulty = [| 0; 11; 12; 13 |] in
  let rng = Rng.create 21 in
  (* Focused places its budget on faulty subjects first: give process 0
     enough wrong votes to win the classification vote. *)
  let advice = Gen.generate ~rng ~n ~faulty ~budget:8 Gen.Focused in
  let inputs = Array.init n (fun i -> i mod 2) in
  let decisions, _ =
    run_ba
      ~adversary:(fun pki -> Adv.committee_infiltrator ~pki ~v0:0 ~v1:1)
      ~n ~t ~k ~faulty ~advice inputs
  in
  Alcotest.(check bool) "agreement despite infiltrator" true
    (all_equal (List.map snd decisions))

let prop_agreement =
  qcheck ~count:40 ~name:"Theorem 6: agreement when k >= k_A, t < n/2"
    QCheck2.Gen.(
      let* t = int_range 1 4 in
      let* f = int_range 0 t in
      let* k = int_range 1 2 in
      let* budget = int_range 0 4 in
      let* seed = int_range 0 1_000_000 in
      let n = max ((3 * k) + t + 2) ((2 * t) + 1) + 3 in
      return (n, t, f, k, budget, seed))
    (fun (n, t, f, k, budget, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Scattered in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let adversary pki =
        if seed mod 2 = 0 then Adversary.silent
        else Adv.committee_infiltrator ~pki ~v0:0 ~v1:1
      in
      let decisions, _ = run_ba ~adversary ~n ~t ~k ~faulty ~advice inputs in
      all_equal (List.map snd decisions))

let prop_unanimity =
  qcheck ~count:40 ~name:"Theorem 6: strong unanimity"
    QCheck2.Gen.(
      let* t = int_range 1 4 in
      let* f = int_range 0 t in
      let* k = int_range 1 2 in
      let* v = int_range 0 9 in
      let* seed = int_range 0 1_000_000 in
      let n = max ((3 * k) + t + 2) ((2 * t) + 1) + 3 in
      return (n, t, f, k, v, seed))
    (fun (n, t, f, k, v, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.perfect ~n ~faulty in
      let decisions, _ =
        run_ba
          ~adversary:(fun pki -> Adv.committee_infiltrator ~pki ~v0:(v + 1) ~v1:(v + 2))
          ~n ~t ~k ~faulty ~advice (Array.make n v)
      in
      List.for_all (fun (_, w) -> w = v) decisions)

let suite =
  [
    Alcotest.test_case "feasibility and rounds" `Quick test_feasibility;
    Alcotest.test_case "agreement beyond n/3" `Quick test_agreement_beyond_third;
    Alcotest.test_case "strong unanimity under infiltrator" `Quick test_unanimity;
    Alcotest.test_case "infeasible k skips silently" `Quick test_infeasible_skips;
    Alcotest.test_case "agreement with infiltrated committee" `Quick
      test_committee_agreement_infiltrated;
    prop_agreement;
    prop_unanimity;
  ]
