module Pki = Bap_crypto.Pki
module Encode = Bap_crypto.Encode

let test_sign_verify () =
  let pki = Pki.create ~n:5 in
  let s = Pki.sign (Pki.key pki 2) "hello" in
  Alcotest.(check bool) "verifies" true (Pki.verify pki ~signer:2 ~payload:"hello" s);
  Alcotest.(check int) "signer" 2 (Pki.signer s)

let test_wrong_payload () =
  let pki = Pki.create ~n:5 in
  let s = Pki.sign (Pki.key pki 2) "hello" in
  Alcotest.(check bool) "other payload fails" false
    (Pki.verify pki ~signer:2 ~payload:"goodbye" s)

let test_wrong_signer () =
  let pki = Pki.create ~n:5 in
  let s = Pki.sign (Pki.key pki 2) "hello" in
  Alcotest.(check bool) "other signer fails" false
    (Pki.verify pki ~signer:3 ~payload:"hello" s)

let test_cross_universe_replay () =
  let pki = Pki.create ~n:5 in
  let pki' = Pki.create ~n:5 in
  let s = Pki.sign (Pki.key pki 2) "hello" in
  Alcotest.(check bool) "replay across executions fails" false
    (Pki.verify pki' ~signer:2 ~payload:"hello" s)

let test_key_range () =
  let pki = Pki.create ~n:3 in
  Alcotest.check_raises "out of range" (Invalid_argument "Pki.key: id out of range")
    (fun () -> ignore (Pki.key pki 3))

let test_signer_of_key () =
  let pki = Pki.create ~n:4 in
  Alcotest.(check int) "owner" 1 (Pki.signer_of_key (Pki.key pki 1))

let test_equal_compare () =
  let pki = Pki.create ~n:3 in
  let s1 = Pki.sign (Pki.key pki 0) "x" in
  let s2 = Pki.sign (Pki.key pki 0) "x" in
  let s3 = Pki.sign (Pki.key pki 1) "x" in
  Alcotest.(check bool) "equal" true (Pki.equal s1 s2);
  Alcotest.(check bool) "not equal" false (Pki.equal s1 s3);
  Alcotest.(check int) "compare equal" 0 (Pki.compare s1 s2)

let test_encode_distinguishes () =
  let pki = Pki.create ~n:3 in
  let s1 = Pki.sign (Pki.key pki 0) "x" in
  let s2 = Pki.sign (Pki.key pki 1) "x" in
  let s3 = Pki.sign (Pki.key pki 0) "y" in
  Alcotest.(check bool) "different signer" false (Pki.encode s1 = Pki.encode s2);
  Alcotest.(check bool) "different payload" false (Pki.encode s1 = Pki.encode s3)

(* Encode combinators: injectivity on tricky boundary cases. *)
let test_encode_injective_pairs () =
  (* Classic ambiguity without length prefixes: ("ab","c") vs ("a","bc"). *)
  Alcotest.(check bool) "pair boundary" false
    (Encode.pair "ab" "c" = Encode.pair "a" "bc");
  Alcotest.(check bool) "list vs nested" false
    (Encode.list [ "a"; "b" ] = Encode.list [ "ab" ]);
  Alcotest.(check bool) "tagged tags matter" false
    (Encode.tagged "t1" "x" = Encode.tagged "t2" "x")

let test_encode_int_str () =
  Alcotest.(check bool) "int/str distinct reprs" false (Encode.int 1 = Encode.int 11);
  Alcotest.(check string) "str roundtrip shape" "3:abc" (Encode.str "abc")

let suite =
  [
    Alcotest.test_case "sign and verify" `Quick test_sign_verify;
    Alcotest.test_case "wrong payload rejected" `Quick test_wrong_payload;
    Alcotest.test_case "wrong signer rejected" `Quick test_wrong_signer;
    Alcotest.test_case "cross-universe replay rejected" `Quick test_cross_universe_replay;
    Alcotest.test_case "key id range checked" `Quick test_key_range;
    Alcotest.test_case "signer_of_key" `Quick test_signer_of_key;
    Alcotest.test_case "equality and compare" `Quick test_equal_compare;
    Alcotest.test_case "encoding distinguishes signatures" `Quick test_encode_distinguishes;
    Alcotest.test_case "encode pair injective at boundaries" `Quick test_encode_injective_pairs;
    Alcotest.test_case "encode int/str shapes" `Quick test_encode_int_str;
  ]
