(* The signed n-dealer gradecast underlying the authenticated graded
   consensus: per-dealer validity and the level-2 coherence property,
   under dealer equivocation and selective certificate revelation. *)

open Helpers
module W = S.W

let run_gradecast ?adversary ~n ~t ~faulty inputs =
  let pki = Pki.create ~n in
  let adversary =
    match adversary with Some make -> make pki | None -> Adversary.passive
  in
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        S.Graded_auth.gradecast ctx ~pki ~key:(Pki.key pki i) ~t ~tag:2 inputs.(i))
  in
  S.R.honest_decisions outcome

let test_honest_dealers_level2 () =
  let n = 9 and t = 4 in
  let inputs = Array.init n (fun i -> i * 3) in
  let faulty = [| 0; 2 |] in
  let decisions = run_gradecast ~n ~t ~faulty inputs in
  List.iter
    (fun (_, deliveries) ->
      Array.iteri
        (fun d slot ->
          if not (Array.mem d faulty) then
            Alcotest.(check (option (pair int int)))
              (Printf.sprintf "dealer %d at level 2" d)
              (Some (inputs.(d), 2))
              slot)
        deliveries)
    decisions

let test_silent_dealer_is_bot () =
  let n = 9 and t = 4 in
  let inputs = Array.init n (fun i -> i) in
  let decisions =
    run_gradecast ~adversary:(fun _ -> Adversary.silent) ~n ~t ~faulty:[| 3 |] inputs
  in
  List.iter
    (fun (_, deliveries) ->
      Alcotest.(check (option (pair int int))) "silent dealer" None deliveries.(3))
    decisions

(* An equivocating dealer signs different values for different halves. *)
let equivocating_dealer pki : Helpers.S.W.t Bap_sim.Adversary.t =
  Adversary.
    {
      name = "gcast-equivocator";
      make =
        (fun ~n:_ ~faulty ->
          let keys = Hashtbl.create 4 in
          Array.iter (fun j -> Hashtbl.replace keys j (Pki.key pki j)) faulty;
          let filter _view ~src outbox dst =
            List.map
              (function
                | W.Gcast_init (tg, sv) when sv.W.sv_dealer = src ->
                  let v = if dst mod 2 = 0 then 500 else 600 in
                  let key = Hashtbl.find keys src in
                  W.Gcast_init
                    ( tg,
                      {
                        W.sv_dealer = src;
                        sv_value = v;
                        sv_sig = Pki.sign key (W.dealer_payload ~dealer:src v);
                      } )
                | m -> m)
              (outbox dst)
          in
          handlers ~filter ());
    }

let prop_level2_coherence =
  qcheck ~count:40 ~name:"gradecast: level 2 anywhere forces same value everywhere"
    QCheck2.Gen.(
      let* n = int_range 5 13 in
      let t = max 1 ((n - 1) / 2) in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* which = int_range 0 2 in
      return (n, t, f, seed, which))
    (fun (n, t, f, seed, which) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let inputs = Array.init n (fun _ -> Rng.int rng 4) in
      let adversary pki =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | _ -> equivocating_dealer pki
      in
      let decisions = run_gradecast ~adversary ~n ~t ~faulty inputs in
      (* For each dealer: if any honest process delivered (v, 2), every
         honest process delivered v at level >= 1. *)
      List.for_all
        (fun d ->
          let level2 =
            List.find_map
              (fun (_, ds) ->
                match ds.(d) with Some (v, 2) -> Some v | _ -> None)
              decisions
          in
          match level2 with
          | None -> true
          | Some v ->
            List.for_all
              (fun (_, ds) ->
                match ds.(d) with Some (w, l) -> w = v && l >= 1 | None -> false)
              decisions)
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "honest dealers delivered at level 2" `Quick
      test_honest_dealers_level2;
    Alcotest.test_case "silent dealer delivers bot" `Quick test_silent_dealer_is_bot;
    prop_level2_coherence;
  ]
