(* Algorithm 3 (graded consensus with core set): Lemmas 7-9 under the
   stated conditions, plus safe termination when the conditions are
   violated. *)

open Helpers

(* Build a scenario satisfying the conditions: every honest i gets an
   L_i of size 3k+1 containing a common core G of 2k+1 honest
   processes; the remaining k slots may differ and may include faulty
   processes. *)
let build_l_sets rng ~n ~faulty ~k =
  let honest = honest_ids ~n ~faulty in
  let core = List.filteri (fun idx _ -> idx < (2 * k) + 1) honest in
  let pool = List.filter (fun i -> not (List.mem i core)) (List.init n Fun.id) in
  Array.init n (fun _ ->
      let pool = Array.of_list pool in
      Rng.shuffle rng pool;
      core @ Array.to_list (Array.sub pool 0 k))

let run_gc ?(adversary = Adversary.passive) ~n ~k ~faulty ~l_sets inputs =
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        S.Graded_core_set.run ctx ~k ~l_set:l_sets.(i) ~tag:3 inputs.(i))
  in
  (S.R.honest_decisions outcome, outcome)

let scenario_gen =
  QCheck2.Gen.(
    let* k = int_range 1 3 in
    let* extra = int_range 0 6 in
    let* f = int_range 0 k in
    let* seed = int_range 0 1_000_000 in
    (* need n >= 3k+1 + k spares + f faulty *)
    let n = ((3 * k) + 1) + k + f + extra in
    return (n, k, f, seed))

let make_config (n, k, f, seed) =
  let rng = Rng.create seed in
  let faulty = random_faulty rng ~n ~f in
  let l_sets = build_l_sets rng ~n ~faulty ~k in
  (rng, faulty, l_sets)

let test_unanimity () =
  let n, k, f, seed = (12, 2, 2, 7) in
  let _, faulty, l_sets = make_config (n, k, f, seed) in
  let decisions, outcome = run_gc ~n ~k ~faulty ~l_sets (Array.make n 9) in
  List.iter
    (fun (_, (v, g)) -> Alcotest.(check (pair int int)) "grade 1" (9, 1) (v, g))
    decisions;
  Alcotest.(check int) "2 rounds" 2 outcome.S.R.rounds

let test_only_l_members_speak () =
  let n, k, f, seed = (12, 2, 0, 11) in
  let _, faulty, l_sets = make_config (n, k, f, seed) in
  (* Make every L identical so the senders are exactly 3k+1 processes:
     per round at most (3k+1) * n messages. *)
  let shared = l_sets.(0) in
  let l_sets = Array.make n shared in
  let _, outcome = run_gc ~n ~k ~faulty ~l_sets (Array.make n 1) in
  let per_round_cap = ((3 * k) + 1) * (n - 1) in
  Array.iter
    (fun c -> Alcotest.(check bool) "sender cap" true (c <= per_round_cap))
    outcome.S.R.honest_per_round

let prop_unanimity =
  qcheck ~count:60 ~name:"strong unanimity with core set"
    scenario_gen
    (fun cfg ->
      let n, k, _, _ = cfg in
      let _, faulty, l_sets = make_config cfg in
      let decisions, _ =
        run_gc ~adversary:(Adv.equivocate ~v0:1 ~v1:2) ~n ~k ~faulty ~l_sets
          (Array.make n 7)
      in
      List.for_all (fun (_, (v, g)) -> v = 7 && g = 1) decisions)

let prop_coherence =
  qcheck ~count:60 ~name:"coherence with core set"
    QCheck2.Gen.(
      let* cfg = scenario_gen in
      let* adv = int_range 0 2 in
      return (cfg, adv))
    (fun ((n, k, f, seed), which) ->
      let _, faulty, l_sets = make_config (n, k, f, seed) in
      let rng2 = Rng.create (seed + 1) in
      let inputs = Array.init n (fun _ -> Rng.int rng2 3) in
      let adversary =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | _ -> Adv.echo_chaos ~v0:0 ~v1:1
      in
      let decisions, _ = run_gc ~adversary ~n ~k ~faulty ~l_sets inputs in
      match List.filter (fun (_, (_, g)) -> g = 1) decisions with
      | [] -> true
      | (_, (v, _)) :: _ -> List.for_all (fun (_, (w, _)) -> w = v) decisions)

(* When the conditions are violated (no common core), the protocol must
   still terminate in 2 rounds - only the grades become meaningless. *)
let test_no_core_set_still_terminates () =
  let n = 12 and k = 1 in
  let rng = Rng.create 5 in
  let l_sets =
    Array.init n (fun _ ->
        Array.to_list
          (Array.of_list (Rng.sample_without_replacement rng ((3 * k) + 1) n)))
  in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outcome = run_gc ~n ~k ~faulty:[| 0 |] ~l_sets inputs in
  Alcotest.(check int) "2 rounds" 2 outcome.S.R.rounds

let suite =
  [
    Alcotest.test_case "strong unanimity" `Quick test_unanimity;
    Alcotest.test_case "only L members broadcast" `Quick test_only_l_members_speak;
    prop_unanimity;
    prop_coherence;
    Alcotest.test_case "terminates without core set" `Quick test_no_core_set_still_terminates;
  ]
