(* Algorithm 4 (conciliation with core set): agreement and strong
   unanimity under the conditions (honest-only L sets with a 2k+1 core),
   Lemmas 10-14. *)

open Helpers

(* L sets satisfying the conciliation conditions: all honest members,
   shared core of size 2k+1, k honest extras that may differ. *)
let build_l_sets rng ~n ~faulty ~k =
  let honest = honest_ids ~n ~faulty in
  assert (List.length honest >= (3 * k) + 1);
  let core = List.filteri (fun idx _ -> idx < (2 * k) + 1) honest in
  let spares = List.filter (fun i -> not (List.mem i core)) honest in
  Array.init n (fun _ ->
      let pool = Array.of_list spares in
      Rng.shuffle rng pool;
      core @ Array.to_list (Array.sub pool 0 k))

let run_conc ?(adversary = Adversary.passive) ~n ~faulty ~k ~l_sets inputs =
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        ignore k;
        S.Conciliate.run ctx ~l_set:l_sets.(i) ~tag:2 inputs.(i))
  in
  (S.R.honest_decisions outcome, outcome)

let scenario_gen =
  QCheck2.Gen.(
    let* k = int_range 1 3 in
    let* extra = int_range 0 5 in
    let* f = int_range 0 k in
    let* seed = int_range 0 1_000_000 in
    let n = ((3 * k) + 1) + k + f + extra in
    return (n, k, f, seed))

let test_agreement_basic () =
  let n = 10 and k = 1 in
  let rng = Rng.create 13 in
  let faulty = [| 9 |] in
  let l_sets = build_l_sets rng ~n ~faulty ~k in
  let inputs = Array.init n (fun i -> i mod 3) in
  let decisions, outcome = run_conc ~n ~faulty ~k ~l_sets inputs in
  Alcotest.(check bool) "agree" true (all_equal (List.map snd decisions));
  Alcotest.(check int) "one round" 1 outcome.S.R.rounds

let test_unanimity_basic () =
  let n = 10 and k = 1 in
  let rng = Rng.create 14 in
  let faulty = [| 0 |] in
  let l_sets = build_l_sets rng ~n ~faulty ~k in
  let decisions, _ = run_conc ~n ~faulty ~k ~l_sets (Array.make n 5) in
  List.iter (fun (_, v) -> Alcotest.(check int) "value kept" 5 v) decisions

let prop_agreement =
  qcheck ~count:80 ~name:"conciliation agreement under chaos"
    QCheck2.Gen.(
      let* cfg = scenario_gen in
      let* which = int_range 0 2 in
      return (cfg, which))
    (fun ((n, k, f, seed), which) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      if List.length (honest_ids ~n ~faulty) < (3 * k) + 1 + k then true
      else begin
        let l_sets = build_l_sets rng ~n ~faulty ~k in
        let inputs = Array.init n (fun _ -> Rng.int rng 4) in
        let adversary =
          match which with
          | 0 -> Adversary.passive
          | 1 -> Adversary.silent
          | _ -> Adv.echo_chaos ~v0:0 ~v1:3
        in
        let decisions, _ = run_conc ~adversary ~n ~faulty ~k ~l_sets inputs in
        all_equal (List.map snd decisions)
      end)

let prop_unanimity =
  qcheck ~count:60 ~name:"conciliation strong unanimity"
    scenario_gen
    (fun (n, k, f, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      if List.length (honest_ids ~n ~faulty) < (3 * k) + 1 + k then true
      else begin
        let l_sets = build_l_sets rng ~n ~faulty ~k in
        let decisions, _ =
          run_conc ~adversary:(Adv.value_push ~v:9) ~n ~faulty ~k ~l_sets
            (Array.make n 2)
        in
        List.for_all (fun (_, v) -> v = 2) decisions
      end)

(* Outside the conditions (faulty members inside L sets), conciliation
   may disagree but must terminate in its single round. *)
let test_terminates_with_faulty_l () =
  let n = 10 and k = 1 in
  let l_sets = Array.make n [ 0; 1; 2; 3 ] in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outcome =
    run_conc ~adversary:(Adv.equivocate ~v0:0 ~v1:1) ~n ~faulty:[| 0; 1 |] ~k ~l_sets
      inputs
  in
  Alcotest.(check int) "one round" 1 outcome.S.R.rounds

let suite =
  [
    Alcotest.test_case "agreement" `Quick test_agreement_basic;
    Alcotest.test_case "strong unanimity" `Quick test_unanimity_basic;
    prop_agreement;
    prop_unanimity;
    Alcotest.test_case "terminates with faulty in L" `Quick test_terminates_with_faulty_l;
  ]
