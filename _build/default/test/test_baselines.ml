(* The no-prediction baselines: early-stopping phase king, plain phase
   king, Dolev-Strong agreement. *)

open Helpers
module B = Bap_baselines.Baseline_runs.Make (Bap_core.Value.Int)
module BAdv = Bap_adversary.Strategies.Make (Bap_core.Value.Int) (B.S.W)

let test_es_baseline () =
  let n = 10 and t = 3 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let s = B.run_early_stopping ~t ~faulty:[| 1 |] ~inputs ~adversary:Bap_sim.Adversary.silent () in
  Alcotest.(check bool) "agreement" true s.B.agreement;
  Alcotest.(check bool) "validity" true s.B.validity;
  (* One silent fault: king 0 honest, decided in phase 1. *)
  Alcotest.(check bool) "early decision" true (s.B.decided_round <= 5)

let test_phase_king_baseline () =
  let n = 10 and t = 3 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let s = B.run_phase_king ~t ~faulty:[| 0; 4 |] ~inputs () in
  Alcotest.(check bool) "agreement" true s.B.agreement;
  (* Plain phase king never stops early. *)
  Alcotest.(check int) "always (t+1)(gc+1) rounds" ((t + 1) * 3) s.B.rounds

let test_dolev_strong_baseline () =
  let n = 9 and t = 4 in
  (* t beyond n/3: Dolev-Strong handles it with signatures. *)
  let inputs = Array.init n (fun i -> i mod 2) in
  let s = B.run_dolev_strong ~t ~faulty:[| 0; 1; 2; 3 |] ~inputs () in
  Alcotest.(check bool) "agreement" true s.B.agreement;
  Alcotest.(check int) "t+1 rounds" (t + 1) s.B.rounds

let test_dolev_strong_validity () =
  let n = 7 and t = 2 in
  let inputs = Array.make n 5 in
  let s = B.run_dolev_strong ~t ~faulty:[| 6 |] ~inputs () in
  Alcotest.(check bool) "validity" true s.B.validity

let prop_es_baseline =
  qcheck ~count:40 ~name:"ES baseline agreement + validity"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* which = int_range 0 2 in
      return (n, t, faulty, seed, which))
    (fun (n, t, faulty, seed, which) ->
      let rng = Rng.create seed in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let adversary =
        match which with
        | 0 -> Bap_sim.Adversary.passive
        | 1 -> Bap_sim.Adversary.silent
        | _ -> BAdv.equivocate ~v0:0 ~v1:1
      in
      let s = B.run_early_stopping ~t ~faulty ~inputs ~adversary () in
      s.B.agreement && s.B.validity)

let test_interactive_consistency () =
  let n = 8 and t = 3 in
  let inputs = Array.init n (fun i -> i * 10) in
  let faulty = [| 2; 5 |] in
  let decisions = B.run_interactive_consistency ~t ~faulty ~inputs () in
  (* All honest processes hold the same vector. *)
  (match decisions with
  | (_, first) :: rest ->
    List.iter (fun (_, v) -> Alcotest.(check bool) "same vector" true (v = first)) rest;
    (* Honest slots carry the true inputs (passive faults broadcast
       honestly too in this run). *)
    Array.iteri
      (fun i slot ->
        if not (Array.mem i faulty) then
          Alcotest.(check (option int)) "honest slot" (Some inputs.(i)) slot)
      first
  | [] -> Alcotest.fail "no decisions");
  ()

let test_interactive_consistency_silent_faults () =
  let n = 8 and t = 3 in
  let inputs = Array.init n (fun i -> i * 10) in
  let faulty = [| 2; 5 |] in
  let decisions =
    B.run_interactive_consistency ~t ~faulty ~inputs
      ~adversary:(fun _ -> Bap_sim.Adversary.silent) ()
  in
  match decisions with
  | (_, first) :: rest ->
    List.iter (fun (_, v) -> Alcotest.(check bool) "same vector" true (v = first)) rest;
    Alcotest.(check (option int)) "silent sender delivers nothing" None first.(2)
  | [] -> Alcotest.fail "no decisions"

let prop_dolev_strong =
  qcheck ~count:30 ~name:"Dolev-Strong agreement, t < n/2"
    QCheck2.Gen.(
      let* n = int_range 5 13 in
      let t = max 1 ((n - 1) / 2) in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      return (n, t, f, seed))
    (fun (n, t, f, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let s = B.run_dolev_strong ~t ~faulty ~inputs ~adversary:(fun _ -> Bap_sim.Adversary.silent) () in
      s.B.agreement && s.B.validity)

let suite =
  [
    Alcotest.test_case "early-stopping baseline" `Quick test_es_baseline;
    Alcotest.test_case "plain phase king" `Quick test_phase_king_baseline;
    Alcotest.test_case "Dolev-Strong beyond n/3" `Quick test_dolev_strong_baseline;
    Alcotest.test_case "Dolev-Strong validity" `Quick test_dolev_strong_validity;
    prop_es_baseline;
    prop_dolev_strong;
    Alcotest.test_case "interactive consistency" `Quick test_interactive_consistency;
    Alcotest.test_case "interactive consistency, silent faults" `Quick
      test_interactive_consistency_silent_faults;
  ]
