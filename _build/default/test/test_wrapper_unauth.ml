(* Algorithm 1, unauthenticated configuration (Theorem 11): agreement,
   strong unanimity and termination across the (n, t, f, B, placement,
   adversary) grid, plus the round-complexity shape. *)

open Helpers
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality

let adversaries =
  [|
    ("passive", Adversary.passive);
    ("silent", Adversary.silent);
    ("equivocate", Adv.equivocate ~v0:0 ~v1:1);
    ("value-push", Adv.value_push ~v:1);
    ("advice-liar", Adv.advice_liar);
    ("echo-chaos", Adv.echo_chaos ~v0:0 ~v1:1);
    ("staggered-crash", Adv.staggered_crash ~interval:7);
    ("king-killer", Adv.king_killer);
    ("flip-flop", Adv.flip_flop);
    ("splitter", Adv.adaptive_splitter ~n_minus_t:12 ~junk:(fun r -> -r));
  |]

let test_quickstart () =
  let n = 13 and t = 4 in
  let faulty = [| 2; 6 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = S.run_unauth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "agreement" true (S.agreement o);
  Alcotest.(check bool) "everyone decided" true
    (List.length (S.R.honest_decisions o) = n - 2)

let test_unanimous_fast () =
  let n = 13 and t = 4 in
  let faulty = [| 0; 1 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.make n 3 in
  let o = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:(Adv.value_push ~v:9) () in
  Alcotest.(check bool) "validity" true (S.unanimous_validity ~inputs ~faulty o);
  (* Strong unanimity forces a decision by the end of phase 1. *)
  let cfg = S.unauth_config ~t in
  let phase1_end =
    List.fold_left
      (fun acc (_, phi, _, last) -> if phi <= 1 then max acc last else acc)
      0 (S.Wrapper.schedule cfg ~t)
  in
  Alcotest.(check bool) "decided in phase 1" true (S.decision_round o <= phase1_end)

let test_schedule_covers_run () =
  let t = 5 in
  let cfg = S.unauth_config ~t in
  let sched = S.Wrapper.schedule cfg ~t in
  (* Contiguous coverage from round 1. *)
  let _ =
    List.fold_left
      (fun expected (_, _, first, last) ->
        Alcotest.(check int) "contiguous" expected first;
        last + 1)
      1 sched
  in
  Alcotest.(check int) "total rounds" (S.Wrapper.rounds cfg ~t)
    (List.fold_left (fun acc (_, _, _, l) -> max acc l) 0 sched)

let test_phase_count () =
  Alcotest.(check int) "t=1" 1 (S.Wrapper.phases_total ~t:1);
  Alcotest.(check int) "t=2" 2 (S.Wrapper.phases_total ~t:2);
  Alcotest.(check int) "t=5" 4 (S.Wrapper.phases_total ~t:5);
  Alcotest.(check int) "t=8" 4 (S.Wrapper.phases_total ~t:8);
  Alcotest.(check int) "t=9" 5 (S.Wrapper.phases_total ~t:9)

let prop_agreement_grid =
  qcheck ~count:60 ~name:"Theorem 11: agreement on the full grid"
    QCheck2.Gen.(
      let* n = int_range 7 22 in
      let t = (n - 1) / 3 in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* budget = int_range 0 (n * 2) in
      let* placement = oneofl [ Gen.Uniform; Gen.Focused; Gen.Scattered; Gen.All_wrong ] in
      let* adv = int_range 0 (Array.length adversaries - 1) in
      return (n, t, f, seed, budget, placement, adv))
    (fun (n, t, f, seed, budget, placement, adv) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.generate ~rng ~n ~faulty ~budget placement in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:(snd adversaries.(adv)) () in
      S.agreement o && S.unanimous_validity ~inputs ~faulty o)

let prop_round_shape =
  (* With perfect advice, decisions come in phase 1 whatever f is (the
     classification BA with k=1 succeeds since k_A = 0): the O(B/n + 1)
     side of the min. *)
  qcheck ~count:30 ~name:"perfect advice decides in phase 1"
    (config_gen ~min_n:10 ~max_n:25 ~t_of_n:(fun n -> (n - 1) / 3) ())
    (fun (n, t, faulty, seed) ->
      let rng = Rng.create seed in
      let advice = Gen.perfect ~n ~faulty in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Adversary.silent () in
      let cfg = S.unauth_config ~t in
      let phase1_end =
        List.fold_left
          (fun acc (_, phi, _, last) -> if phi <= 1 then max acc last else acc)
          0 (S.Wrapper.schedule cfg ~t)
      in
      S.Ba_class_unauth.feasible ~n ~t ~k:1 = false
      || S.decision_round o <= phase1_end)

let prop_few_faults_decide_early =
  (* With f = 0 actual faults but terrible advice, the early-stopping
     component decides in phase 1. *)
  qcheck ~count:30 ~name:"f=0 with all-wrong advice decides in phase 1"
    QCheck2.Gen.(
      let* n = int_range 7 20 in
      let* seed = int_range 0 1_000 in
      return (n, seed))
    (fun (n, seed) ->
      let t = (n - 1) / 3 in
      let rng = Rng.create seed in
      let advice = Gen.generate ~rng ~n ~faulty:[||] ~budget:0 Gen.All_wrong in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o = S.run_unauth ~t ~faulty:[||] ~inputs ~advice () in
      let cfg = S.unauth_config ~t in
      let phase1_end =
        List.fold_left
          (fun acc (_, phi, _, last) -> if phi <= 1 then max acc last else acc)
          0 (S.Wrapper.schedule cfg ~t)
      in
      S.decision_round o <= phase1_end)

let test_message_attribution () =
  let n = 13 and t = 4 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = S.run_unauth ~t ~faulty ~inputs ~advice () in
  let cfg = S.unauth_config ~t in
  let by_component = S.messages_by_component cfg ~t o in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 by_component in
  Alcotest.(check int) "attribution is a partition" o.S.R.honest_sent total;
  Alcotest.(check bool) "classify component present" true
    (List.mem_assoc "classify" by_component)

let suite =
  [
    Alcotest.test_case "quickstart run" `Quick test_quickstart;
    Alcotest.test_case "unanimous inputs decide in phase 1" `Quick test_unanimous_fast;
    Alcotest.test_case "schedule covers the run" `Quick test_schedule_covers_run;
    Alcotest.test_case "phase count formula" `Quick test_phase_count;
    prop_agreement_grid;
    prop_round_shape;
    prop_few_faults_decide_early;
    Alcotest.test_case "message attribution partitions the total" `Quick
      test_message_attribution;
  ]
