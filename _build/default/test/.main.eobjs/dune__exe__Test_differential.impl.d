test/test_differential.ml: Adv Adversary Array Fun Helpers List Pki QCheck2 Rng S
