test/test_ba_class_auth.ml: Adv Adversary Alcotest Array Bap_core Bap_prediction Helpers List Pki QCheck2 Rng S
