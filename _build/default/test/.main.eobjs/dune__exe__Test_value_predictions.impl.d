test/test_value_predictions.ml: Adv Adversary Alcotest Array Bap_prediction Fun Helpers List QCheck2 Rng S
