test/test_wire_fuzz.ml: Helpers List Pki QCheck2 Rng S
