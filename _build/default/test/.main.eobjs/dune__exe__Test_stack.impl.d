test/test_stack.ml: Adv Advice Alcotest Array Bap_core Bap_prediction Fun Helpers List Pki Rng S
