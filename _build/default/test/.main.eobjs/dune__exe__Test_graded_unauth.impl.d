test/test_graded_unauth.ml: Adv Adversary Alcotest Array Helpers List QCheck2 Rng S
