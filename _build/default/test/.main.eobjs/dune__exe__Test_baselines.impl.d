test/test_baselines.ml: Alcotest Array Bap_adversary Bap_baselines Bap_core Bap_sim Helpers List QCheck2 Rng
