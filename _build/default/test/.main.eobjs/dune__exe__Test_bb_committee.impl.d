test/test_bb_committee.ml: Adversary Alcotest Array Bap_sim Helpers List Pki QCheck2 Rng S
