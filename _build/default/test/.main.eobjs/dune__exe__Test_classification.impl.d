test/test_classification.ml: Adv Alcotest Array Bap_core Bap_prediction Bap_sim Fmt Fun Helpers List QCheck2 S
