test/test_wire.ml: Alcotest Helpers List Pki S
