test/test_conciliate.ml: Adv Adversary Alcotest Array Helpers List QCheck2 Rng S
