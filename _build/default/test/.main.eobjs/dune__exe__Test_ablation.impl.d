test/test_ablation.ml: Adv Alcotest Array Bap_core Bap_prediction Fun Helpers Rng S
