test/test_inbox.ml: Alcotest Bap_sim Int
