test/test_wrapper_auth.ml: Adv Adversary Alcotest Array Bap_prediction Helpers List Pki QCheck2 Rng S
