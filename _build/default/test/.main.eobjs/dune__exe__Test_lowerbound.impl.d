test/test_lowerbound.ml: Adversary Alcotest Array Bap_lowerbound Bap_prediction Helpers List QCheck2 Rng S
