test/test_stats.ml: Alcotest Bap_core Bap_stats List String
