test/test_graded_auth.ml: Adversary Alcotest Array Bap_sim Hashtbl Helpers List Pki QCheck2 Rng S
