test/main.mli:
