test/test_gradecast.ml: Adversary Alcotest Array Bap_sim Fun Hashtbl Helpers List Pki Printf QCheck2 Rng S
