test/test_determinism.ml: Adv Adversary Advice Array Bap_prediction Fmt Helpers List QCheck2 Rng S
