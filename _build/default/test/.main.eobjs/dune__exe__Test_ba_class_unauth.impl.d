test/test_ba_class_unauth.ml: Adv Adversary Alcotest Array Bap_core Bap_prediction Helpers List QCheck2 Rng S
