test/test_monitor.ml: Adv Adversary Advice Alcotest Array Bap_adversary Bap_monitor Bap_prediction Bap_sim Fmt Fun Helpers List Option QCheck2 Rng S V
