test/test_pki.ml: Alcotest Bap_crypto
