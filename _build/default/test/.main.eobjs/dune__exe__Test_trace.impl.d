test/test_trace.ml: Alcotest Bap_sim Fmt List String
