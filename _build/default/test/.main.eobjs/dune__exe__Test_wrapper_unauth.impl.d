test/test_wrapper_unauth.ml: Adv Adversary Alcotest Array Bap_prediction Helpers List QCheck2 Rng S
