test/test_graded_core_set.ml: Adv Adversary Alcotest Array Fun Helpers List QCheck2 Rng S
