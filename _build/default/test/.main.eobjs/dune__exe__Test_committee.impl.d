test/test_committee.ml: Adv Alcotest Array Bap_core Bap_prediction Fun Helpers List Pki QCheck2 Rng S
