test/test_early_stopping.ml: Adv Adversary Alcotest Array Helpers List QCheck2 Rng S
