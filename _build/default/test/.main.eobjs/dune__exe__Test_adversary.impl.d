test/test_adversary.ml: Adv Adversary Advice Alcotest Array Bap_crypto Bap_sim Helpers Int List S
