test/test_advice.ml: Alcotest Array Bap_prediction Bap_sim Fmt Printf
