test/test_conciliate_graph.ml: Alcotest Array Bap_sim Helpers List S
