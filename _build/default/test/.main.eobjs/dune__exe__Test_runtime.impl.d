test/test_runtime.ml: Alcotest Array Bap_sim List Printf
