test/test_rng.ml: Alcotest Array Bap_sim Fun List
