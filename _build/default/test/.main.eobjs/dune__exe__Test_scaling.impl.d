test/test_scaling.ml: Adversary Alcotest Array Bap_baselines Bap_core Bap_prediction Bap_stats Fun Helpers List Rng S
