test/helpers.ml: Array Bap_adversary Bap_core Bap_crypto Bap_prediction Bap_sim Fun List Printf QCheck2 QCheck_alcotest String
