(* Algorithm 1, authenticated configuration (Theorem 12): agreement and
   strong unanimity for t up to (1/2 - eps) n, including B beyond the
   unauthenticated n^(3/2) barrier. *)

open Helpers
module Gen = Bap_prediction.Gen

let test_beyond_third () =
  let n = 11 and t = 4 in
  (* 4 actual Byzantine of 11: beyond the unauthenticated n/3 bound. *)
  let faulty = [| 1; 3; 5; 7 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o, _ = S.run_auth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "agreement" true (S.agreement o)

let test_unanimity_infiltrator () =
  let n = 11 and t = 4 in
  let faulty = [| 0; 2; 4 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.make n 6 in
  let o, _ =
    S.run_auth ~t ~faulty ~inputs ~advice
      ~adversary:(fun pki -> Adv.committee_infiltrator ~pki ~v0:1 ~v1:2)
      ()
  in
  Alcotest.(check bool) "validity" true (S.unanimous_validity ~inputs ~faulty o)

let prop_agreement_grid =
  qcheck ~count:40 ~name:"Theorem 12: agreement, t < n/2, any B"
    QCheck2.Gen.(
      let* n = int_range 7 17 in
      let t = max 1 ((n / 2) - 1) in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      let* budget = int_range 0 (n * n) in
      let* placement = oneofl [ Gen.Uniform; Gen.Focused; Gen.Scattered; Gen.All_wrong ] in
      let* adv = int_range 0 4 in
      return (n, t, f, seed, budget, placement, adv))
    (fun (n, t, f, seed, budget, placement, adv) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.generate ~rng ~n ~faulty ~budget placement in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let adversary pki =
        match adv with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | 2 -> Adv.prediction_attacker_auth ~pki ~v0:0 ~v1:1
        | 3 -> Adv.vote_withholder
        | _ -> Adv.committee_infiltrator ~pki ~v0:0 ~v1:1
      in
      let o, _ = S.run_auth ~t ~faulty ~inputs ~advice ~adversary () in
      S.agreement o && S.unanimous_validity ~inputs ~faulty o)

let prop_perfect_advice_phase1 =
  qcheck ~count:20 ~name:"perfect advice decides in phase 1 (auth)"
    QCheck2.Gen.(
      let* n = int_range 9 17 in
      let t = max 1 ((n / 2) - 2) in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000 in
      return (n, t, f, seed))
    (fun (n, t, f, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.perfect ~n ~faulty in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o, _ = S.run_auth ~t ~faulty ~inputs ~advice ~adversary:(fun _ -> Adversary.silent) () in
      let pki = Pki.create ~n:1 in
      ignore pki;
      let cfg =
        (* The schedule only depends on round counts, not on keys; build
           it with a throwaway pki/key. *)
        let pki = Pki.create ~n in
        S.auth_config ~pki ~key:(Pki.key pki 0) ~t
      in
      let phase1_end =
        List.fold_left
          (fun acc (_, phi, _, last) -> if phi <= 1 then max acc last else acc)
          0 (S.Wrapper.schedule cfg ~t)
      in
      S.Ba_class_auth.feasible ~n ~t ~k:1 = false || S.decision_round o <= phase1_end)

let suite =
  [
    Alcotest.test_case "agreement beyond n/3" `Quick test_beyond_third;
    Alcotest.test_case "unanimity vs committee infiltrator" `Quick
      test_unanimity_infiltrator;
    prop_agreement_grid;
    prop_perfect_advice_phase1;
  ]
