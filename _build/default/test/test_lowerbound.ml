(* Theorems 13 and 14: the lower-bound formula, the message audit, the
   executable Dolev-Reischuk demonstration, and the tightness of the
   implementation against the round bound. *)

open Helpers
module Round_lb = Bap_lowerbound.Round_lb
module Message_lb = Bap_lowerbound.Message_lb
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality

let test_round_bound_formula () =
  (* Large B: predictions useless, classic min(f+2, t+1). *)
  Alcotest.(check int) "f small" 5 (Round_lb.bound ~n:10 ~t:7 ~f:3 ~b:100);
  Alcotest.(check int) "f = t" 8 (Round_lb.bound ~n:10 ~t:7 ~f:7 ~b:1000);
  (* B = 0 with f > 0: the advice pins everything down to O(1). *)
  Alcotest.(check int) "perfect advice" 1 (Round_lb.bound ~n:10 ~t:7 ~f:3 ~b:0);
  (* Intermediate: b/(n-f)+2 bites. *)
  Alcotest.(check int) "intermediate" 3 (Round_lb.bound ~n:10 ~t:7 ~f:5 ~b:7)

let test_round_bound_args () =
  Alcotest.check_raises "f > t" (Invalid_argument "Round_lb.bound") (fun () ->
      ignore (Round_lb.bound ~n:10 ~t:2 ~f:3 ~b:0))

let test_simulation_params () =
  let s = Round_lb.simulation ~n:10 ~t:7 ~f:5 ~b:7 in
  (* x = f - floor(b/(n-f)) = 5 - 1 = 4 *)
  Alcotest.(check int) "crashed upfront" 4 s.Round_lb.crashed_upfront;
  Alcotest.(check int) "n'" 6 s.Round_lb.n';
  Alcotest.(check int) "t'" 3 s.Round_lb.t';
  Alcotest.(check int) "f'" 1 s.Round_lb.f';
  let s = Round_lb.simulation ~n:10 ~t:7 ~f:3 ~b:100 in
  Alcotest.(check int) "large B: no crash" 0 s.Round_lb.crashed_upfront

let test_message_bound () =
  Alcotest.(check int) "t=4" 4 (Message_lb.bound ~t:4);
  Alcotest.(check int) "t=5" 6 (Message_lb.bound ~t:5);
  Alcotest.(check int) "t=0" 0 (Message_lb.bound ~t:0)

let test_audit_pays () =
  let r =
    Message_lb.audit ~honest_sent:1000 ~honest_received:(Array.make 10 50) ~t:6
  in
  Alcotest.(check bool) "paid" true r.Message_lb.paid;
  Alcotest.(check (list int)) "nobody isolable" [] r.Message_lb.isolable

let test_audit_detects_isolation () =
  let received = Array.make 10 50 in
  received.(3) <- 1;
  let r = Message_lb.audit ~honest_sent:5 ~honest_received:received ~t:6 in
  Alcotest.(check bool) "not paid" false r.Message_lb.paid;
  Alcotest.(check (list int)) "process 3 isolable" [ 3 ] r.Message_lb.isolable;
  Alcotest.(check (pair int int)) "min received" (3, 1) r.Message_lb.min_received

let test_demo_breaks_cheap_protocol () =
  let o = Message_lb.Demo.run ~n:7 in
  Alcotest.(check bool) "agreement broken" true o.Message_lb.Demo.agreement_broken;
  (* In E_good all honest decide the sender's value. *)
  List.iter
    (fun (_, v) -> Alcotest.(check int) "E_good decides 1" 1 v)
    o.Message_lb.Demo.good_decisions;
  (* In E_bad the starved process deviates. *)
  Alcotest.(check int) "starved decides default" 0
    (List.assoc o.Message_lb.Demo.starved o.Message_lb.Demo.bad_decisions)

(* The real protocol passes the audit even with perfect predictions -
   the content of Theorem 14. *)
let prop_real_protocol_pays =
  qcheck ~count:20 ~name:"Theorem 14: wrapper pays t^2/4 with perfect predictions"
    QCheck2.Gen.(
      let* n = int_range 10 24 in
      let* seed = int_range 0 1_000 in
      return (n, seed))
    (fun (n, seed) ->
      let t = (n - 1) / 3 in
      let rng = Rng.create seed in
      let f = Rng.int rng (t + 1) in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.perfect ~n ~faulty in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o = S.run_unauth ~t ~faulty ~inputs ~advice () in
      let audit =
        Message_lb.audit ~honest_sent:o.S.R.honest_sent
          ~honest_received:o.S.R.honest_received ~t
      in
      audit.Message_lb.paid)

(* Tightness of Theorem 13: the implementation's decision round is
   within a constant factor of rounds := the lower bound (in phases the
   factor shows as decided_round <= c * bound * phase_length). Here we
   check the weaker sanity direction - the implementation never beats
   the bound. *)
let prop_never_beats_bound =
  qcheck ~count:20 ~name:"Theorem 13: decisions never beat the round bound"
    QCheck2.Gen.(
      let* n = int_range 10 22 in
      let* seed = int_range 0 1_000 in
      let* budget = int_range 0 (n * n / 2) in
      return (n, seed, budget))
    (fun (n, seed, budget) ->
      let t = (n - 1) / 3 in
      let rng = Rng.create seed in
      let f = Rng.int rng (t + 1) in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
      let b = (Quality.measure ~n ~faulty advice).Quality.b in
      let inputs = Array.init n (fun _ -> Rng.int rng 2) in
      let o = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Adversary.silent () in
      t >= n - 1 || S.decision_round o >= Round_lb.bound ~n ~t ~f ~b)

let suite =
  [
    Alcotest.test_case "round bound formula" `Quick test_round_bound_formula;
    Alcotest.test_case "round bound argument checks" `Quick test_round_bound_args;
    Alcotest.test_case "simulation parameters" `Quick test_simulation_params;
    Alcotest.test_case "message bound" `Quick test_message_bound;
    Alcotest.test_case "audit passes on chatty executions" `Quick test_audit_pays;
    Alcotest.test_case "audit flags isolable processes" `Quick test_audit_detects_isolation;
    Alcotest.test_case "demo breaks the cheap protocol" `Quick
      test_demo_breaks_cheap_protocol;
    prop_real_protocol_pays;
    prop_never_beats_bound;
  ]
