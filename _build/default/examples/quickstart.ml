(* Quickstart: ten replicas agree on a value with help from a slightly
   noisy security monitor.

   Run with: dune exec examples/quickstart.exe *)

module V = Bap_core.Value.Int
module Stack = Bap_core.Stack.Make (V)
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Rng = Bap_sim.Rng

let () =
  let n = 10 in
  (* Tolerate up to t = 3 Byzantine processes (t < n/3). *)
  let t = 3 in
  (* In this execution, replicas 2 and 7 are actually malicious: they
     follow the protocol but a rushing adversary rewrites everything
     they say, equivocating between 0 and 1. *)
  let faulty = [| 2; 7 |] in
  (* Each replica proposes a value; here they disagree 0/1. *)
  let inputs = [| 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 |] in
  (* The security monitor hands every replica a classification of all
     the others. It is mostly right: we plant 5 wrong bits. *)
  let rng = Rng.create 2025 in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:5 Gen.Uniform in
  let stats = Quality.measure ~n ~faulty advice in
  Fmt.pr "Security monitor quality: %a@." Quality.pp_stats stats;
  (* Run Byzantine Agreement with predictions (Algorithm 1,
     unauthenticated configuration). *)
  let module Adv = Bap_adversary.Strategies.Make (V) (Stack.W) in
  let outcome =
    Stack.run_unauth ~t ~faulty ~inputs ~advice
      ~adversary:(Adv.equivocate ~v0:0 ~v1:1) ()
  in
  Fmt.pr "Execution: %d rounds, %d honest messages@." outcome.Stack.R.rounds
    outcome.Stack.R.honest_sent;
  List.iter
    (fun (i, r) ->
      Fmt.pr "  replica %d decided %d (fixed in round %d)@." i r.Stack.Wrapper.value
        r.Stack.Wrapper.decided_round)
    (Stack.R.honest_decisions outcome);
  assert (Stack.agreement outcome);
  Fmt.pr "Agreement: all honest replicas decided the same value.@."
