(* The paper's motivating scenario: a cluster protected by an ML-based
   network security monitor (think Darktrace / Vectra / Zeek). The
   monitor flags suspicious replicas; its accuracy varies. This example
   sweeps the monitor's error rate and shows the promised graceful
   degradation: decisions are fast while the monitor is good, degrade
   smoothly, and never get worse than the no-monitor baseline's O(f).

   Run with: dune exec examples/security_monitor.exe *)

module V = Bap_core.Value.Int
module Stack = Bap_core.Stack.Make (V)
module B = Bap_baselines.Baseline_runs.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Stack.W)
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Rng = Bap_sim.Rng
module Table = Bap_stats.Table

(* A synthetic monitor: each honest replica's view of replica j is wrong
   independently with probability [error_rate]. *)
let monitor ~rng ~n ~faulty ~error_rate =
  let truth = Bap_prediction.Advice.ground_truth ~n ~faulty in
  let is_faulty = Array.make n false in
  Array.iter (fun j -> is_faulty.(j) <- true) faulty;
  Array.init n (fun i ->
      if is_faulty.(i) then truth
      else
        Bap_prediction.Advice.init n (fun j ->
            let correct = Bap_prediction.Advice.get truth j in
            if Rng.float rng < error_rate then not correct else correct))

let () =
  let n = 31 in
  let t = 10 in
  let f = 10 in
  (* The intruders sit on the first king slots and play the strongest
     generic attack we have. *)
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 7 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  Fmt.pr
    "Cluster of %d replicas, %d compromised; sweeping the monitor's error rate.@.@."
    n f;
  let rows =
    List.map
      (fun error_rate ->
        let advice = monitor ~rng ~n ~faulty ~error_rate in
        let stats = Quality.measure ~n ~faulty advice in
        let outcome =
          Stack.run_unauth ~t ~faulty ~inputs ~advice
            ~adversary:(Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r))
            ()
        in
        let baseline =
          B.run_early_stopping ~t ~faulty ~inputs ~adversary:Bap_sim.Adversary.silent ()
        in
        [
          Printf.sprintf "%.0f%%" (error_rate *. 100.);
          string_of_int stats.Quality.b;
          Printf.sprintf "%.1f" (float_of_int stats.Quality.b /. float_of_int n);
          string_of_int (Stack.decision_round outcome);
          string_of_int baseline.B.decided_round;
          (if Stack.agreement outcome then "yes" else "NO");
        ])
      [ 0.0; 0.01; 0.05; 0.1; 0.25; 0.5 ]
  in
  Table.print
    ~headers:
      [ "monitor error"; "B"; "B/n"; "with predictions"; "no-monitor O(f)"; "agreement" ]
    rows;
  Fmt.pr
    "@.A good monitor pins the decision to the first phase; as the error rate@.\
     grows the wrapper degrades gracefully to the same O(f) asymptotics as the@.\
     prediction-free early-stopping protocol (paying the guess-and-double@.\
     constant), and agreement holds throughout.@."
