examples/kv_store.ml: Array Bap_adversary Bap_core Bap_monitor Bap_sim Fmt Fun List Option String
