examples/quickstart.mli:
