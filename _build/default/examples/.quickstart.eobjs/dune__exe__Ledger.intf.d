examples/ledger.mli:
