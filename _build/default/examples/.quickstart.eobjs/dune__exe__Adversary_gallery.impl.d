examples/adversary_gallery.ml: Array Bap_adversary Bap_core Bap_prediction Bap_sim Bap_stats Fmt Fun List
