examples/security_monitor.mli:
