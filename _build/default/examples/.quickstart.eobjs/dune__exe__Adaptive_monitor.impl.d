examples/adaptive_monitor.ml: Array Bap_adversary Bap_core Bap_monitor Bap_sim Bap_stats Fmt Fun List
