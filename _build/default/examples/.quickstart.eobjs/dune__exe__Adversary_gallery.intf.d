examples/adversary_gallery.mli:
