examples/security_monitor.ml: Array Bap_adversary Bap_baselines Bap_core Bap_prediction Bap_sim Bap_stats Fmt Fun List Printf
