examples/adaptive_monitor.mli:
