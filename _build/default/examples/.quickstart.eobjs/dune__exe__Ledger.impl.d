examples/ledger.ml: Array Bap_adversary Bap_core Bap_prediction Bap_sim Fmt List
