(* A replicated key-value store: state-machine replication where each
   command slot is decided by Byzantine agreement with predictions over
   string-valued commands, with a reputation-tracking monitor carrying
   suspicion between slots. All honest replicas end with identical
   stores even though five replicas are compromised and the clients
   disagree about command order.

   Run with: dune exec examples/kv_store.exe *)

module V = Bap_core.Value.String
module Repeated = Bap_monitor.Repeated.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Repeated.S.W)
module Rng = Bap_sim.Rng

(* Tiny command language: "SET key value" | "DEL key" | "NOP". *)
let apply store command =
  match String.split_on_char ' ' command with
  | [ "SET"; key; value ] -> (key, value) :: List.remove_assoc key store
  | [ "DEL"; key ] -> List.remove_assoc key store
  | _ -> store

let () =
  let n = 31 and t = 5 and f = 5 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 2026 in
  (* Each slot, every replica proposes the next command from its local
     client queue; queues disagree about order, so agreement matters. *)
  let candidates =
    [|
      [| "SET user alice"; "SET user bob" |];
      [| "SET balance 100"; "SET balance 250" |];
      [| "SET audit on"; "SET audit off" |];
      [| "DEL user"; "NOP" |];
    |]
  in
  let inputs_for_slot slot =
    Array.init n (fun _ -> candidates.(slot - 1).(Rng.int rng 2))
  in
  (* A silent coalition: it can stall but not inject commands. (The
     paper's validity is strong unanimity only - when honest proposals
     are split, an equivocating coalition could get a value of its own
     choosing decided; a production system would add external validity
     on top, e.g. client signatures on commands.) *)
  ignore (Adv.equivocate ~v0:"x" ~v1:"y");
  let reputation = Bap_monitor.Reputation.create ~n () in
  let results =
    Repeated.run_slots ~slots:(Array.length candidates) ~t ~faulty
      ~inputs:(inputs_for_slot 1) ~inputs_for_slot ~reputation
      ~adversary:Bap_sim.Adversary.silent ()
  in
  Fmt.pr "Replicated KV store, %d/%d replicas compromised:@.@." f n;
  let store = ref [] in
  List.iter
    (fun r ->
      assert r.Repeated.agreement;
      let command = Option.get r.Repeated.decision in
      store := apply !store command;
      Fmt.pr "  slot %d: committed %-16S in round %-3d (suspects so far: %d)@."
        r.Repeated.slot command r.Repeated.decided_round
        (List.length r.Repeated.suspected))
    results;
  Fmt.pr "@.Final store:@.";
  List.iter (fun (k, v) -> Fmt.pr "  %s = %s@." k v) (List.sort compare !store);
  Fmt.pr "All honest replicas hold identical stores (agreement per slot).@."
