(* The feedback loop from the paper's introduction, end to end: a
   cluster commits a sequence of slots; a network-tap monitor watches
   each execution and turns observed misbehaviour into the next slot's
   predictions. The attacker stalls the first slot, gets fingerprinted,
   and every later slot runs at the perfect-advice floor.

   Run with: dune exec examples/adaptive_monitor.exe *)

module V = Bap_core.Value.Int
module Repeated = Bap_monitor.Repeated.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Repeated.S.W)
module Rng = Bap_sim.Rng
module Table = Bap_stats.Table

let () =
  let n = 31 and t = 10 and f = 10 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 5 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let adversary =
    Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
  in
  Fmt.pr
    "Committing 5 slots on a cluster of %d replicas (%d compromised), with a@.\
     monitor that learns from each execution:@.@."
    n f;
  let results = Repeated.run_slots ~slots:5 ~t ~faulty ~inputs ~adversary () in
  Table.print
    ~headers:[ "slot"; "advice errors in"; "decided round"; "caught this slot"; "agreement" ]
    (List.map
       (fun r ->
         [
           string_of_int r.Repeated.slot;
           string_of_int r.Repeated.b;
           string_of_int r.Repeated.decided_round;
           string_of_int (List.length r.Repeated.new_suspects);
           (if r.Repeated.agreement then "yes" else "NO");
         ])
       results);
  Fmt.pr "@.Evidence collected in slot 1:@.";
  List.iter
    (fun (who, reason) -> Fmt.pr "  replica %d: %s@." who reason)
    (List.hd results).Repeated.new_suspects
