(* Every adversary strategy in the library against the same workload,
   side by side: the protocol's guarantees (agreement + validity) hold
   under all of them; what varies is how long the adversary can stall
   the decision and how many messages get spent.

   Run with: dune exec examples/adversary_gallery.exe *)

module V = Bap_core.Value.Int
module Stack = Bap_core.Stack.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Stack.W)
module Adversary = Bap_sim.Adversary
module Gen = Bap_prediction.Gen
module Rng = Bap_sim.Rng
module Table = Bap_stats.Table

let () =
  let n = 31 and t = 10 and f = 8 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 99 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:40 Gen.Uniform in
  let gallery =
    [
      ("passive (protocol-following)", Adversary.passive);
      ("silent (crash at start)", Adversary.silent);
      ("silent after round 10", Adversary.silent_after 10);
      ("staggered crash", Adv.staggered_crash ~interval:10);
      ("value push", Adv.value_push ~v:1);
      ("equivocate", Adv.equivocate ~v0:0 ~v1:1);
      ("advice liar", Adv.advice_liar);
      ("advice liar then silent", Adv.advice_liar_then_silent);
      ("echo chaos", Adv.echo_chaos ~v0:0 ~v1:1);
      ( "adaptive splitter",
        Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r) );
      ("king killer", Adv.king_killer);
      ("flip flop", Adv.flip_flop);
      ("partition (starve odd ids)", Adv.partition ~targets:[ 11; 13; 15; 17; 19 ]);
    ]
  in
  Fmt.pr "n=%d, t=%d, f=%d, B=40 uniform advice errors.@.@." n t f;
  let rows =
    List.map
      (fun (name, adversary) ->
        let o = Stack.run_unauth ~t ~faulty ~inputs ~advice ~adversary () in
        [
          name;
          string_of_int (Stack.decision_round o);
          string_of_int o.Stack.R.rounds;
          string_of_int o.Stack.R.honest_sent;
          (if Stack.agreement o then "yes" else "NO");
          (if Stack.unanimous_validity ~inputs ~faulty o then "yes" else "NO");
        ])
      gallery
  in
  Table.print
    ~headers:[ "adversary"; "decided"; "rounds"; "honest msgs"; "agreement"; "validity" ]
    rows
