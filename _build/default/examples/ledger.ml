(* A replicated ledger committing a block id by Byzantine agreement over
   string values, using the authenticated stack (Theorem 12): with
   signatures the system survives t just under n/2 - here 5 of 11
   replicas are compromised, which no unauthenticated protocol could
   tolerate. The compromised replicas include one that the monitor
   mistakenly trusts; it gets itself onto the leader committee and
   equivocates inside the Byzantine broadcasts, to no avail.

   Run with: dune exec examples/ledger.exe *)

module V = Bap_core.Value.String
module Stack = Bap_core.Stack.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (Stack.W)
module Gen = Bap_prediction.Gen
module Rng = Bap_sim.Rng

let () =
  let n = 11 in
  let t = 5 in
  let faulty = [| 0; 3; 5; 8; 10 |] in
  (* The replicas propose the tip block of their local chain; a network
     partition has them split between two candidate blocks. *)
  let inputs =
    Array.init n (fun i -> if i mod 2 = 0 then "block-7f3a" else "block-99c1")
  in
  (* The monitor's advice: mostly right, but replica 3 is wrongly
     whitelisted by 6 honest replicas (focused errors). *)
  let rng = Rng.create 11 in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:6 (Gen.Targeted 6) in
  let outcome, _pki =
    Stack.run_auth ~t ~faulty ~inputs ~advice
      ~adversary:(fun pki ->
        Adv.committee_infiltrator ~pki ~v0:"block-7f3a" ~v1:"block-99c1")
      ()
  in
  Fmt.pr "Ledger commit with %d/%d compromised replicas (authenticated stack):@." t n;
  List.iter
    (fun (i, r) -> Fmt.pr "  replica %-2d commits %s@." i r.Stack.Wrapper.value)
    (Stack.R.honest_decisions outcome);
  assert (Stack.agreement outcome);
  Fmt.pr "All honest replicas committed the same block in %d rounds (%d messages).@."
    outcome.Stack.R.rounds outcome.Stack.R.honest_sent
